//! fsck-style consistency checking — the metadata leg of `mif-fsck`.
//!
//! Verifies the cross-structure invariants the metadata stores must
//! maintain — the kind of checker a file system ships with (`e2fsck`), and
//! the backbone of this repository's failure-injection tests. There is one
//! checker implementation: this module produces structured
//! [`MetaFinding`]s that the `mif-fsck` subsystem consumes as its pass-1
//! metadata scan and pass-2 global cross-reference, while the original
//! [`check_embedded`]/[`check_normal`] entry points remain as thin
//! adapters over it (so `Mds::check()` and older tests keep working).
//!
//! Embedded mode (§IV):
//! * every live slot's content block lies inside its directory's runs;
//! * no two directories' content/mapping blocks overlap;
//! * every owned block is marked allocated in the data-area bitmaps;
//! * the global directory table maps every directory id to the directory
//!   that actually holds it, and parent chains are acyclic and resolvable;
//! * every rename-correlation target is structurally resolvable;
//! * lazy-free slot lists are disjoint from live slots;
//! * the recorded fragmentation degree equals extents / files.
//!
//! Normal mode:
//! * every inode index is unique within its group and within table bounds;
//! * dirent-block lists are disjoint across directories and marked
//!   allocated in the data-area bitmaps.

use crate::embedded::EmbeddedStore;
use crate::ids::{DirId, InodeNo, ROOT_INO};
use crate::normal::NormalStore;
use crate::store::DataArea;
use std::collections::{HashMap, HashSet};

/// A consistency violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// Which invariant failed.
    pub rule: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// A structured metadata finding. Each variant carries enough provenance
/// for `mif-fsck`'s repair pass to fix it without re-deriving anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaFinding {
    /// A content block claimed by two directory runs.
    ContentRunOverlap { dir: InodeNo, block: u64 },
    /// A live slot beyond the directory's content capacity.
    SlotOutOfContent { dir: InodeNo, slot: u32 },
    /// Recorded fragmentation-degree numerator disagrees with the slots.
    DegreeDrift {
        dir: InodeNo,
        recorded: u64,
        actual: u64,
    },
    /// A mapping block claimed twice.
    MapBlockOverlap { dir: InodeNo, block: u64 },
    /// A directory absent from the global directory table.
    DirtableMissing { dir: InodeNo },
    /// A directory-table entry pointing at something that is not the
    /// directory registered under that identification.
    DirtableStale { id: DirId, ino: InodeNo },
    /// A directory whose parent chain cycles or fails to reach the root.
    ChainBroken { dir: InodeNo },
    /// A rename-correlation alias whose target cannot resolve (its
    /// directory identification is not in the table).
    CorrelationDangling { old: InodeNo, new: InodeNo },
    /// A lazy-free list entry that is live, duplicated, or out of range.
    LazyFreeAlias { dir: InodeNo, slot: u32 },
    /// A directory-owned block not marked allocated in the data-area
    /// bitmap (a lost bitmap write).
    MetaBitmapHole { dir: InodeNo, block: u64 },
    /// Two normal-mode inodes sharing one inode-table location.
    InodeIndexCollision {
        ino: InodeNo,
        group: u64,
        index: u64,
    },
    /// A dirent block shared by two directories.
    DirentBlockOverlap { dir: InodeNo, block: u64 },
}

impl MetaFinding {
    /// Stable rule slug (matches the historical `Inconsistency::rule`
    /// strings where a rule predates the structured checker).
    pub fn rule(&self) -> &'static str {
        match self {
            MetaFinding::ContentRunOverlap { .. } => "content-run-overlap",
            MetaFinding::SlotOutOfContent { .. } => "slot-out-of-content",
            MetaFinding::DegreeDrift { .. } => "degree-accounting",
            MetaFinding::MapBlockOverlap { .. } => "map-block-overlap",
            MetaFinding::DirtableMissing { .. } => "dirtable-missing",
            MetaFinding::DirtableStale { .. } => "dirtable-stale",
            MetaFinding::ChainBroken { .. } => "chain-broken",
            MetaFinding::CorrelationDangling { .. } => "correlation-dangling",
            MetaFinding::LazyFreeAlias { .. } => "lazy-free-alias",
            MetaFinding::MetaBitmapHole { .. } => "meta-bitmap-hole",
            MetaFinding::InodeIndexCollision { .. } => "inode-index-collision",
            MetaFinding::DirentBlockOverlap { .. } => "dirent-block-overlap",
        }
    }

    /// Human-readable details.
    pub fn detail(&self) -> String {
        match self {
            MetaFinding::ContentRunOverlap { dir, block } => {
                format!("block {block} owned twice (dir {dir})")
            }
            MetaFinding::SlotOutOfContent { dir, slot } => {
                format!("dir {dir} slot {slot} beyond capacity")
            }
            MetaFinding::DegreeDrift {
                dir,
                recorded,
                actual,
            } => format!("dir {dir}: recorded {recorded} vs actual {actual}"),
            MetaFinding::MapBlockOverlap { dir, block } => {
                format!("mapping block {block} owned twice (dir {dir})")
            }
            MetaFinding::DirtableMissing { dir } => {
                format!("dir {dir} not in the table")
            }
            MetaFinding::DirtableStale { id, ino } => {
                format!("table entry {id:?} points at {ino}, which does not hold it")
            }
            MetaFinding::ChainBroken { dir } => {
                format!("dir {dir}: parent chain cycles or dead-ends")
            }
            MetaFinding::CorrelationDangling { old, new } => {
                format!("alias {old} -> {new}: target unresolvable")
            }
            MetaFinding::LazyFreeAlias { dir, slot } => {
                format!("dir {dir}: free-list slot {slot} live, duplicated or out of range")
            }
            MetaFinding::MetaBitmapHole { dir, block } => {
                format!("dir {dir}: owned block {block} not marked allocated")
            }
            MetaFinding::InodeIndexCollision { ino, group, index } => {
                format!("group {group} index {index} used twice (ino {ino})")
            }
            MetaFinding::DirentBlockOverlap { dir, block } => {
                format!("dirent block {block} shared (dir {dir})")
            }
        }
    }

    /// Downgrade to the flat representation `Mds::check()` reports.
    pub fn to_inconsistency(&self) -> Inconsistency {
        Inconsistency {
            rule: self.rule(),
            detail: self.detail(),
        }
    }
}

/// Full structured check of an embedded store. Pass the data area to also
/// cross-check block ownership against the allocation bitmaps (the
/// per-group leg `mif-fsck` parallelizes); without it only structural
/// invariants are checked. Findings are deterministic: directories are
/// visited in inode order.
pub fn meta_findings_embedded(store: &EmbeddedStore, data: Option<&DataArea>) -> Vec<MetaFinding> {
    let mut out = Vec::new();
    let mut owned_blocks: HashSet<u64> = HashSet::new();
    let mut snapshots = store.dir_snapshots();
    snapshots.sort_unstable_by_key(|&(ino, _)| ino);

    // Reverse index for the directory-table cross-reference.
    let by_id: HashMap<DirId, InodeNo> = snapshots.iter().map(|(ino, s)| (s.id, *ino)).collect();

    for (ino, snapshot) in &snapshots {
        let ino = *ino;
        // Content runs must be disjoint across the namespace.
        for &(start, len) in &snapshot.runs {
            for b in start..start + len {
                if !owned_blocks.insert(b) {
                    out.push(MetaFinding::ContentRunOverlap { dir: ino, block: b });
                } else if let Some(d) = data {
                    if !d.is_allocated(b) {
                        out.push(MetaFinding::MetaBitmapHole { dir: ino, block: b });
                    }
                }
            }
        }
        // Slots must lie inside the content capacity.
        let mut slots = snapshot.live_slots.clone();
        slots.sort_unstable();
        for &slot in &slots {
            if slot as u64 >= snapshot.capacity_slots {
                out.push(MetaFinding::SlotOutOfContent { dir: ino, slot });
            }
        }
        // Fragmentation degree bookkeeping must match the slots.
        if snapshot.extents_total != snapshot.extents_sum {
            out.push(MetaFinding::DegreeDrift {
                dir: ino,
                recorded: snapshot.extents_total,
                actual: snapshot.extents_sum,
            });
        }
        // Mapping blocks disjoint from everything else, and allocated.
        for &b in &snapshot.map_blocks {
            if !owned_blocks.insert(b) {
                out.push(MetaFinding::MapBlockOverlap { dir: ino, block: b });
            } else if let Some(d) = data {
                if !d.is_allocated(b) {
                    out.push(MetaFinding::MetaBitmapHole { dir: ino, block: b });
                }
            }
        }
        // The directory table must know this directory.
        if ino != ROOT_INO && store.dirtable.lookup(snapshot.id).is_none() {
            out.push(MetaFinding::DirtableMissing { dir: ino });
        }
        // Lazy-free lists: disjoint from live slots, duplicate-free, and
        // below the high-water mark.
        let live: HashSet<u32> = snapshot.live_slots.iter().copied().collect();
        let mut seen: HashSet<u32> = HashSet::new();
        for &slot in snapshot.pending_free.iter().chain(&snapshot.free_slots) {
            if live.contains(&slot) || !seen.insert(slot) || slot >= snapshot.next_slot {
                out.push(MetaFinding::LazyFreeAlias { dir: ino, slot });
            }
        }
    }

    // Global cross-reference: every table entry must point back at the
    // directory registered under it.
    for (id, ino) in store.dirtable.entries() {
        if by_id.get(&id) != Some(&ino) {
            out.push(MetaFinding::DirtableStale { id, ino });
        }
    }
    // Parent chains: acyclic and resolvable up to the root.
    let table_len = store.dirtable.len();
    for (ino, _) in &snapshots {
        let mut cur = *ino;
        let mut visited: HashSet<DirId> = HashSet::new();
        let mut ok = false;
        for _ in 0..=table_len {
            if cur == ROOT_INO {
                ok = true;
                break;
            }
            let id = cur.dir_id();
            if !visited.insert(id) {
                break; // cycle
            }
            match store.dirtable.lookup(id) {
                Some(parent) => cur = parent,
                None => break, // dead end
            }
        }
        if !ok {
            out.push(MetaFinding::ChainBroken { dir: *ino });
        }
    }
    // Rename-correlation aliases must be structurally resolvable.
    for (old, new) in store.correlation.entries() {
        let valid = new == ROOT_INO || store.dirtable.lookup(new.dir_id()).is_some();
        if !valid {
            out.push(MetaFinding::CorrelationDangling { old, new });
        }
    }
    out
}

/// Full structured check of a normal store (see
/// [`meta_findings_embedded`] for the `data` parameter).
pub fn meta_findings_normal(store: &NormalStore, data: Option<&DataArea>) -> Vec<MetaFinding> {
    let mut out = Vec::new();

    // Inode indexes unique per group.
    let mut per_group: HashSet<(u64, u64)> = HashSet::new();
    let mut locations = store.inode_locations();
    locations.sort_unstable();
    for (ino, group, index) in locations {
        if !per_group.insert((group, index)) {
            out.push(MetaFinding::InodeIndexCollision { ino, group, index });
        }
    }

    // Dirent blocks disjoint across directories, and marked allocated.
    let mut blocks: HashSet<u64> = HashSet::new();
    let mut lists = store.dir_block_lists();
    lists.sort_unstable();
    for (ino, dirent_blocks) in lists {
        for b in dirent_blocks {
            if !blocks.insert(b) {
                out.push(MetaFinding::DirentBlockOverlap { dir: ino, block: b });
            } else if let Some(d) = data {
                if !d.is_allocated(b) {
                    out.push(MetaFinding::MetaBitmapHole { dir: ino, block: b });
                }
            }
        }
    }
    out
}

/// Check an embedded store; returns every violation found. Thin adapter
/// over [`meta_findings_embedded`] (structural checks only).
pub fn check_embedded(store: &EmbeddedStore) -> Vec<Inconsistency> {
    meta_findings_embedded(store, None)
        .iter()
        .map(MetaFinding::to_inconsistency)
        .collect()
}

/// Check a normal store; returns every violation found. Thin adapter over
/// [`meta_findings_normal`] (structural checks only).
pub fn check_normal(store: &NormalStore) -> Vec<Inconsistency> {
    meta_findings_normal(store, None)
        .iter()
        .map(MetaFinding::to_inconsistency)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MdsLayout;
    use crate::store::DataArea;

    fn embedded() -> (EmbeddedStore, DataArea) {
        let layout = MdsLayout::default();
        let mut data = DataArea::new(&layout);
        let store = EmbeddedStore::new(&layout, &mut data);
        (store, data)
    }

    #[test]
    fn clean_embedded_store_passes() {
        let (mut s, mut d) = embedded();
        let dir = s.mkdir(&mut d, ROOT_INO, "d").0;
        for i in 0..100 {
            s.create(&mut d, dir, &format!("f{i}"), (i % 9) + 1);
        }
        for i in 0..30 {
            s.unlink(&mut d, dir, &format!("f{i}"));
        }
        let sub = s.mkdir(&mut d, dir, "sub").0;
        s.rename(&mut d, dir, "f40", sub, "moved");
        assert_eq!(check_embedded(&s), vec![]);
        // The bitmap cross-check finds nothing on a healthy store either.
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
    }

    #[test]
    fn clean_normal_store_passes() {
        let layout = MdsLayout::default();
        let mut data = DataArea::new(&layout);
        let mut s = NormalStore::new(&layout, false, &mut data);
        let dir = s.mkdir(&mut data, ROOT_INO, "d").0;
        for i in 0..400 {
            s.create(&mut data, dir, &format!("f{i}"), (i % 300) + 1);
        }
        for i in 0..100 {
            s.unlink(&mut data, dir, &format!("f{i}"));
        }
        assert_eq!(check_normal(&s), vec![]);
        assert_eq!(meta_findings_normal(&s, Some(&data)), vec![]);
    }

    #[test]
    fn checker_survives_heavy_churn() {
        let (mut s, mut d) = embedded();
        let dir = s.mkdir(&mut d, ROOT_INO, "d").0;
        for gen in 0..4 {
            for i in 0..200 {
                s.create(&mut d, dir, &format!("g{gen}_{i}"), (i % 40) + 1);
            }
            for i in 0..200 {
                s.unlink(&mut d, dir, &format!("g{gen}_{i}"));
            }
        }
        assert_eq!(check_embedded(&s), vec![]);
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
    }

    #[test]
    fn degree_drift_is_found_and_repaired() {
        let (mut s, mut d) = embedded();
        for i in 0..10 {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 3);
        }
        let old = s.corrupt_degree_total(ROOT_INO, 999);
        assert_eq!(old, 30);
        let findings = meta_findings_embedded(&s, Some(&d));
        assert!(findings
            .iter()
            .any(|f| matches!(f, MetaFinding::DegreeDrift { recorded: 999, .. })));
        assert!(s.repair_degree_total(ROOT_INO));
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
        assert!(!s.repair_degree_total(ROOT_INO), "repair is idempotent");
    }

    #[test]
    fn stale_dirtable_entry_is_found_and_repaired() {
        let (mut s, mut d) = embedded();
        let sub = s.mkdir(&mut d, ROOT_INO, "sub").0;
        s.create(&mut d, sub, "x", 1);
        // Re-point sub's table entry at a bogus inode.
        s.dirtable
            .update(sub.dir_id(), InodeNo::compose(sub.dir_id(), 999));
        let findings = meta_findings_embedded(&s, Some(&d));
        assert!(findings
            .iter()
            .any(|f| matches!(f, MetaFinding::DirtableStale { .. })));
        assert_eq!(s.rebuild_dirtable(), 1);
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
        assert_eq!(s.rebuild_dirtable(), 0, "repair is idempotent");
    }

    #[test]
    fn dangling_correlation_is_found_and_repaired() {
        let (mut s, mut d) = embedded();
        s.create(&mut d, ROOT_INO, "a", 1);
        let bogus = InodeNo::compose(DirId(9_999), 5);
        s.correlation.record(InodeNo::compose(DirId(0), 0), bogus);
        let findings = meta_findings_embedded(&s, Some(&d));
        assert!(findings
            .iter()
            .any(|f| matches!(f, MetaFinding::CorrelationDangling { .. })));
        assert_eq!(s.drop_dangling_correlations(), 1);
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
        assert_eq!(s.drop_dangling_correlations(), 0, "repair is idempotent");
    }

    #[test]
    fn lazy_free_alias_is_found_and_repaired() {
        let (mut s, mut d) = embedded();
        for i in 0..5 {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        let slot = s.corrupt_alias_free_slot(ROOT_INO).unwrap();
        let findings = meta_findings_embedded(&s, Some(&d));
        assert!(findings
            .iter()
            .any(|f| matches!(f, MetaFinding::LazyFreeAlias { slot: sl, .. } if *sl == slot)));
        assert_eq!(s.repair_free_slot_aliases(ROOT_INO), 1);
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
        assert_eq!(s.repair_free_slot_aliases(ROOT_INO), 0, "idempotent");
    }

    #[test]
    fn meta_bitmap_hole_is_found() {
        let (mut s, mut d) = embedded();
        s.create(&mut d, ROOT_INO, "a", 1);
        let run = s.runs_of(ROOT_INO)[0];
        assert!(d.force_bit(run.0, false));
        let findings = meta_findings_embedded(&s, Some(&d));
        assert!(findings
            .iter()
            .any(|f| matches!(f, MetaFinding::MetaBitmapHole { block, .. } if *block == run.0)));
        // Structural-only checking does not see bitmap damage.
        assert_eq!(check_embedded(&s), vec![]);
        // Repair: re-set the bit.
        assert!(d.force_bit(run.0, true));
        assert_eq!(meta_findings_embedded(&s, Some(&d)), vec![]);
    }
}
