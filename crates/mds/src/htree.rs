//! Hashed directory index (ext4/Lustre Htree).
//!
//! The paper's Lustre baseline "utilizes the Htree index to improve the
//! performance of lookup operation which is involved in all metadata access
//! operations" (§V-D.2). This module implements the structure rather than
//! approximating it with a flag: a root index block maps hash ranges to
//! leaf buckets; a lookup reads the index block plus exactly one bucket;
//! buckets split when they fill, and the split-off bucket block is
//! allocated wherever the data area has space at that moment — which is how
//! an aged Htree directory's buckets end up scattered.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Entries per leaf bucket block (matches the dirent density of
/// [`crate::layout::DIRENTS_PER_BLOCK`] with bucket headers).
pub const BUCKET_CAPACITY: usize = 240;

fn hash_name(name: &str) -> u64 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

/// One leaf bucket: a hash range and the entry hashes it holds.
#[derive(Debug, Clone)]
struct Bucket {
    /// Lowest hash this bucket covers (ranges partition the hash space).
    low: u64,
    /// The disk block holding the bucket.
    pub block: u64,
    /// Entry hashes (the actual dirents live in the block; the in-memory
    /// index tracks hashes for split decisions).
    hashes: Vec<u64>,
}

/// The in-memory mirror of an Htree-indexed directory.
///
/// The caller owns block allocation: [`HtreeIndex::insert`] reports when a
/// split needs a fresh block via the provided allocator closure.
#[derive(Debug, Clone)]
pub struct HtreeIndex {
    /// Block holding the root index.
    pub index_block: u64,
    buckets: Vec<Bucket>,
}

impl HtreeIndex {
    /// A new index: one root block, one initial bucket block.
    pub fn new(index_block: u64, first_bucket_block: u64) -> Self {
        Self {
            index_block,
            buckets: vec![Bucket {
                low: 0,
                block: first_bucket_block,
                hashes: Vec::new(),
            }],
        }
    }

    fn bucket_of(&self, hash: u64) -> usize {
        // Buckets are sorted by `low`; find the last with low <= hash.
        match self.buckets.binary_search_by(|b| b.low.cmp(&hash)) {
            Ok(i) => i,
            Err(i) => i - 1, // i >= 1 because buckets[0].low == 0
        }
    }

    /// Blocks a lookup of `name` must read: the root index plus one bucket.
    pub fn lookup_blocks(&self, name: &str) -> [u64; 2] {
        let b = &self.buckets[self.bucket_of(hash_name(name))];
        [self.index_block, b.block]
    }

    /// The bucket block that holds (or would hold) `name`.
    pub fn bucket_block(&self, name: &str) -> u64 {
        self.buckets[self.bucket_of(hash_name(name))].block
    }

    /// Insert `name`. When the target bucket is full it splits: the
    /// allocator closure provides a fresh block for the new bucket, and the
    /// dirtied blocks (old bucket, new bucket, index) are returned for
    /// journaling/checkpointing.
    pub fn insert(&mut self, name: &str, mut alloc_block: impl FnMut() -> u64) -> Vec<u64> {
        let h = hash_name(name);
        let i = self.bucket_of(h);
        if self.buckets[i].hashes.len() < BUCKET_CAPACITY {
            self.buckets[i].hashes.push(h);
            return vec![self.buckets[i].block];
        }
        // Split: the bucket's hash range halves; entries redistribute.
        let next_low = self.buckets.get(i + 1).map(|b| b.low).unwrap_or(u64::MAX);
        let old = &mut self.buckets[i];
        let mid = old.low + (next_low - old.low) / 2;
        let mut upper: Vec<u64> = Vec::new();
        old.hashes.retain(|&x| {
            if x >= mid {
                upper.push(x);
                false
            } else {
                true
            }
        });
        let new_block = alloc_block();
        let old_block = old.block;
        self.buckets.insert(
            i + 1,
            Bucket {
                low: mid,
                block: new_block,
                hashes: upper,
            },
        );
        // Insert the new entry into whichever half owns it.
        let j = self.bucket_of(h);
        self.buckets[j].hashes.push(h);
        vec![old_block, new_block, self.index_block]
    }

    /// Remove `name`; returns the dirtied bucket block (buckets never
    /// merge, like ext4's Htree).
    pub fn remove(&mut self, name: &str) -> u64 {
        let h = hash_name(name);
        let i = self.bucket_of(h);
        if let Some(pos) = self.buckets[i].hashes.iter().position(|&x| x == h) {
            self.buckets[i].hashes.swap_remove(pos);
        }
        self.buckets[i].block
    }

    /// All bucket blocks in hash order (a full-directory scan reads them
    /// all, plus the index).
    pub fn all_blocks(&self) -> Vec<u64> {
        let mut v = vec![self.index_block];
        v.extend(self.buckets.iter().map(|b| b.block));
        v
    }

    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    pub fn entry_count(&self) -> usize {
        self.buckets.iter().map(|b| b.hashes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> (HtreeIndex, u64) {
        (HtreeIndex::new(1000, 1001), 1002)
    }

    #[test]
    fn lookup_reads_index_plus_one_bucket() {
        let (mut idx, mut next) = index();
        for i in 0..100 {
            idx.insert(&format!("f{i}"), || {
                next += 1;
                next
            });
        }
        let blocks = idx.lookup_blocks("f42");
        assert_eq!(blocks[0], 1000);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn buckets_split_when_full() {
        let (mut idx, mut next) = index();
        for i in 0..(BUCKET_CAPACITY * 3) {
            idx.insert(&format!("f{i}"), || {
                next += 1;
                next
            });
        }
        assert!(idx.bucket_count() >= 3, "got {}", idx.bucket_count());
        assert_eq!(idx.entry_count(), BUCKET_CAPACITY * 3);
    }

    #[test]
    fn split_redistributes_and_lookups_still_resolve() {
        let (mut idx, mut next) = index();
        let names: Vec<String> = (0..1000).map(|i| format!("file{i:04}")).collect();
        for n in &names {
            idx.insert(n, || {
                next += 1;
                next
            });
        }
        // Every name's bucket contains its hash.
        for n in &names {
            let b = idx.bucket_block(n);
            let blocks = idx.lookup_blocks(n);
            assert_eq!(blocks[1], b);
        }
        // Ranges partition: bucket lows strictly increase from 0.
        assert_eq!(idx.buckets[0].low, 0);
        for w in idx.buckets.windows(2) {
            assert!(w[0].low < w[1].low);
        }
    }

    #[test]
    fn remove_then_lookup_consistent() {
        let (mut idx, mut next) = index();
        for i in 0..500 {
            idx.insert(&format!("f{i}"), || {
                next += 1;
                next
            });
        }
        let before = idx.entry_count();
        idx.remove("f123");
        assert_eq!(idx.entry_count(), before - 1);
    }

    #[test]
    fn split_reports_dirty_blocks() {
        let (mut idx, _) = index();
        let mut counter = 2000;
        let mut last_dirty = Vec::new();
        for i in 0..=BUCKET_CAPACITY {
            last_dirty = idx.insert(&format!("f{i}"), || {
                counter += 1;
                counter
            });
        }
        // The final insert triggered the split: old, new and index blocks.
        assert_eq!(last_dirty.len(), 3);
        assert!(last_dirty.contains(&idx.index_block));
    }
}
