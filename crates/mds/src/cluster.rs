//! Metadata-server clusters: large directories and distribution policies
//! (§IV-C and §IV-D).
//!
//! §IV-C: extreme large directories (the ORNL CrayXT5 case — one file per
//! process, all in one directory) are split over a server cluster. "The
//! cluster using embedded directory algorithm enforces the primary server
//! (manage the parent directory content) to collect the hash value of the
//! subfiles' name. Therefore, to lookup a specific file, the primary server
//! find whether the hash value of the file name exists, avoiding to incur
//! extra interactions with the subordinate servers."
//!
//! §IV-D: the embedded directory assumes related metadata shares a disk —
//! true under *subtree* partitioning ("all metadata in the subtree-based
//! partition are delegated to an individual metadata server"), broken under
//! *hashed-pathname* distribution, where "inode structures of the subfiles
//! in the same directory are often managed by different servers" and
//! embedding cannot help. Both policies are implemented here so the
//! limitation is measurable, not just asserted.

use crate::ids::{InodeNo, ROOT_INO};
use crate::mds::{DirMode, Mds, MdsConfig};
use mif_simdisk::Nanos;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// How metadata objects are spread over the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Directory subtrees are delegated to individual servers; a
    /// directory's sub-files live with it (locality preserved).
    Subtree,
    /// Objects are placed by the hash of their absolute pathname (the
    /// Lustre-DNE/zFS style the paper cites); locality is sacrificed for
    /// balance and embedding cannot co-locate a directory's metadata.
    HashedPath,
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Distribution::Subtree => "subtree",
            Distribution::HashedPath => "hashed-path",
        })
    }
}

fn hash_of(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Where a directory lives across the cluster.
#[derive(Debug)]
struct ClusterDir {
    /// Server owning the directory itself (its content / primary).
    home: usize,
    /// Per-server ino of the mirror directory used to hold the entries
    /// that land on that server (subtree / striped placement).
    shard_inos: Vec<Option<InodeNo>>,
    /// Entry names per server (drives distributed readdir).
    entries_per_server: Vec<Vec<String>>,
    /// Distributed over all servers (extreme large directory, §IV-C).
    striped: bool,
    /// Primary's collected name-hash index (§IV-C); only meaningful for
    /// striped directories.
    hash_index: HashMap<u64, usize>,
}

/// Per-operation cost summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Client→server and server→server messages.
    pub hops: u64,
    /// Operations executed.
    pub ops: u64,
}

/// A cluster of metadata servers.
pub struct MdsCluster {
    servers: Vec<Mds>,
    distribution: Distribution,
    /// Whether striped directories keep a name-hash index at the primary.
    pub primary_hash_index: bool,
    /// One-way network latency per hop, in ns.
    pub network_ns: Nanos,
    dirs: HashMap<String, ClusterDir>,
    /// Per-server flat table used by the hashed-path distribution: every
    /// directory's entries interleave in it, which is exactly why the
    /// embedded layout cannot co-locate them (§IV-D).
    flat_inos: Vec<Option<InodeNo>>,
    stats: ClusterStats,
    client_ns: Nanos,
    next_home: usize,
}

impl MdsCluster {
    /// Build a cluster of `n` servers in the given directory mode.
    pub fn new(n: usize, mode: DirMode, distribution: Distribution) -> Self {
        assert!(n > 0);
        let servers = (0..n)
            .map(|_| Mds::new(MdsConfig::with_mode(mode)))
            .collect();
        let mut c = Self {
            servers,
            distribution,
            primary_hash_index: true,
            network_ns: 100_000, // 100 µs per hop (GbE RTT/2 class)
            dirs: HashMap::new(),
            flat_inos: vec![None; n],
            stats: ClusterStats::default(),
            client_ns: 0,
            next_home: 0,
        };
        let n = c.servers.len();
        c.dirs.insert(
            "/".into(),
            ClusterDir {
                home: 0,
                shard_inos: {
                    let mut v = vec![None; n];
                    v[0] = Some(ROOT_INO);
                    v
                },
                entries_per_server: vec![Vec::new(); n],
                striped: false,
                hash_index: HashMap::new(),
            },
        );
        c
    }

    fn charge(&mut self, hops: u64, disk_ns: Nanos) {
        self.stats.hops += hops;
        self.stats.ops += 1;
        self.client_ns += hops * self.network_ns + disk_ns;
    }

    /// Which server handles `name` inside `dir`?
    fn server_for(&self, dir: &ClusterDir, dir_path: &str, name: &str) -> usize {
        if dir.striped {
            (hash_of(name) % self.servers.len() as u64) as usize
        } else {
            match self.distribution {
                Distribution::Subtree => dir.home,
                Distribution::HashedPath => {
                    (hash_of(&format!("{dir_path}/{name}")) % self.servers.len() as u64) as usize
                }
            }
        }
    }

    /// Ensure the directory has a shard (mirror dir) on `server`; returns
    /// its ino there. Under hashed-path distribution, non-striped
    /// directories share the server's flat table instead — their entries
    /// interleave with every other directory's.
    fn shard(&mut self, dir_path: &str, server: usize) -> InodeNo {
        let dir = self.dirs.get(dir_path).expect("directory exists");
        let use_flat = self.distribution == Distribution::HashedPath && !dir.striped;
        if use_flat {
            if let Some(ino) = self.flat_inos[server] {
                self.dirs
                    .get_mut(dir_path)
                    .expect("directory exists")
                    .shard_inos[server] = Some(ino);
                return ino;
            }
            let ino = self.servers[server].mkdir(ROOT_INO, "flat-table");
            self.flat_inos[server] = Some(ino);
            self.dirs
                .get_mut(dir_path)
                .expect("directory exists")
                .shard_inos[server] = Some(ino);
            return ino;
        }
        if let Some(ino) = dir.shard_inos[server] {
            return ino;
        }
        let ino = self.servers[server].mkdir(ROOT_INO, &format!("shard:{dir_path}"));
        self.dirs
            .get_mut(dir_path)
            .expect("directory exists")
            .shard_inos[server] = Some(ino);
        ino
    }

    /// The on-server name for an entry (flat tables prefix the directory).
    fn shard_name(&self, dir_path: &str, name: &str) -> String {
        if self.distribution == Distribution::HashedPath && !self.dirs[dir_path].striped {
            format!("{dir_path}/{name}")
        } else {
            name.to_string()
        }
    }

    /// Create a directory. `striped` marks it as an extreme large directory
    /// distributed over every server (§IV-C).
    pub fn mkdir(&mut self, path: &str, striped: bool) {
        assert!(!self.dirs.contains_key(path), "directory exists");
        let home = self.next_home % self.servers.len();
        self.next_home += 1;
        let n = self.servers.len();
        self.dirs.insert(
            path.to_string(),
            ClusterDir {
                home,
                shard_inos: vec![None; n],
                entries_per_server: vec![Vec::new(); n],
                striped,
                hash_index: HashMap::new(),
            },
        );
        let t0 = self.servers[home].elapsed_ns();
        self.shard(path, home);
        let dt = self.servers[home].elapsed_ns() - t0;
        self.charge(1, dt);
    }

    /// Create a file in `dir_path`.
    pub fn create(&mut self, dir_path: &str, name: &str, extents: u32) {
        let dir = self.dirs.get(dir_path).expect("directory exists");
        let striped = dir.striped;
        let home = dir.home;
        let server = self.server_for(dir, dir_path, name);
        let ino = self.shard(dir_path, server);
        let shard_name = self.shard_name(dir_path, name);
        let t0 = self.servers[server].elapsed_ns();
        self.servers[server].create(ino, &shard_name, extents);
        let dt = self.servers[server].elapsed_ns() - t0;
        self.dirs
            .get_mut(dir_path)
            .expect("directory exists")
            .entries_per_server[server]
            .push(name.to_string());
        // Client → owning server; plus, for striped dirs, the primary
        // records the name hash (one extra hop unless the primary IS the
        // owner).
        let mut hops = 1;
        if striped && self.primary_hash_index {
            if server != home {
                hops += 1;
            }
            self.dirs
                .get_mut(dir_path)
                .expect("directory exists")
                .hash_index
                .insert(hash_of(name), server);
        }
        self.charge(hops, dt);
    }

    /// Look a file up (stat). Returns whether it was found.
    pub fn stat(&mut self, dir_path: &str, name: &str) -> bool {
        let dir = self.dirs.get(dir_path).expect("directory exists");
        if dir.striped && !self.primary_hash_index {
            // Without the collected index, the primary must interrogate the
            // subordinate servers until one owns the entry.
            let order: Vec<usize> = (0..self.servers.len()).collect();
            let mut hops = 1; // client → primary
            let mut found = false;
            let mut disk = 0;
            for s in order {
                hops += 1; // primary → subordinate s
                if let Some(ino) = self.dirs[dir_path].shard_inos[s] {
                    let shard_name = self.shard_name(dir_path, name);
                    let t0 = self.servers[s].elapsed_ns();
                    let hit = self.servers[s].lookup(ino, &shard_name).is_some();
                    if hit {
                        self.servers[s].stat(ino, &shard_name);
                    }
                    disk += self.servers[s].elapsed_ns() - t0;
                    if hit {
                        found = true;
                        break;
                    }
                }
            }
            self.charge(hops, disk);
            return found;
        }

        // Direct route: striped dirs consult the primary's hash index (one
        // hop to the primary + one to the owner when they differ);
        // non-striped dirs route by the distribution policy.
        let home = dir.home;
        let striped = dir.striped;
        let server = if striped {
            match dir.hash_index.get(&hash_of(name)) {
                Some(&s) => s,
                None => return false, // index says it does not exist
            }
        } else {
            self.server_for(dir, dir_path, name)
        };
        let Some(ino) = self.dirs[dir_path].shard_inos[server] else {
            self.charge(1, 0);
            return false;
        };
        let shard_name = self.shard_name(dir_path, name);
        let t0 = self.servers[server].elapsed_ns();
        let found = self.servers[server].lookup(ino, &shard_name).is_some();
        if found {
            self.servers[server].stat(ino, &shard_name);
        }
        let dt = self.servers[server].elapsed_ns() - t0;
        let hops = if striped && server != home { 2 } else { 1 };
        self.charge(hops, dt);
        found
    }

    /// Aggregated readdir+stat over the whole (possibly distributed)
    /// directory.
    ///
    /// With subtree or striped placement each shard is a real directory and
    /// streams; under hashed-path distribution a directory's entries sit
    /// interleaved in each server's flat table, so the servers must stat
    /// them individually — there is nothing contiguous to stream, which is
    /// §IV-D's point.
    pub fn readdir_stat(&mut self, dir_path: &str) {
        let striped = self.dirs[dir_path].striped;
        let flat = self.distribution == Distribution::HashedPath && !striped;
        let shards: Vec<(usize, InodeNo)> = self.dirs[dir_path]
            .shard_inos
            .iter()
            .enumerate()
            .filter_map(|(s, ino)| ino.map(|i| (s, i)))
            .collect();
        // A striped readdir is a broadcast: every server is contacted — one
        // hop each — because nobody knows a shard is empty without asking it
        // (the primary index answers point lookups, not enumeration). Only
        // shards that materialized a mirror do disk work, but the hop was
        // still paid. Non-striped directories contact exactly the shards
        // holding entries.
        let mut hops = if striped {
            self.servers.len() as u64
        } else {
            0
        };
        let mut disk_max = 0; // shards scan in parallel
        for (s, ino) in shards {
            if !striped {
                hops += 1;
            }
            let t0 = self.servers[s].elapsed_ns();
            if flat {
                let names = self.dirs[dir_path].entries_per_server[s].clone();
                for name in names {
                    let shard_name = self.shard_name(dir_path, &name);
                    self.servers[s].stat(ino, &shard_name);
                }
            } else {
                self.servers[s].readdir_stat(ino);
            }
            disk_max = disk_max.max(self.servers[s].elapsed_ns() - t0);
        }
        self.charge(hops.max(1), disk_max);
    }

    /// Number of servers a directory's entries occupy (the §IV-D locality
    /// measure: 1 = embeddable, n = scattered).
    pub fn spread_of(&self, dir_path: &str) -> usize {
        self.dirs[dir_path]
            .shard_inos
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Cluster-wide op/hop counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Client-visible serial time (network + disk).
    pub fn client_ns(&self) -> Nanos {
        self.client_ns
    }

    /// Total disk accesses across all servers.
    pub fn disk_accesses(&self) -> u64 {
        self.servers.iter().map(|s| s.disk_stats().dispatched).sum()
    }

    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Drop every server's block cache (cold-cache measurement phases).
    pub fn drop_caches(&mut self) {
        for s in &mut self.servers {
            s.drop_caches();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_keeps_a_directory_on_one_server() {
        let mut c = MdsCluster::new(4, DirMode::Embedded, Distribution::Subtree);
        c.mkdir("/proj", false);
        for i in 0..200 {
            c.create("/proj", &format!("f{i}"), 1);
        }
        assert_eq!(c.spread_of("/proj"), 1, "subtree preserves locality");
        assert!(c.stat("/proj", "f42"));
        assert!(!c.stat("/proj", "nope"));
    }

    #[test]
    fn hashed_path_scatters_a_directory() {
        let mut c = MdsCluster::new(4, DirMode::Embedded, Distribution::HashedPath);
        c.mkdir("/proj", false);
        for i in 0..200 {
            c.create("/proj", &format!("f{i}"), 1);
        }
        assert!(c.spread_of("/proj") >= 3, "hashing breaks locality (§IV-D)");
        assert!(c.stat("/proj", "f42"));
    }

    #[test]
    fn striped_dir_spreads_over_every_server() {
        let mut c = MdsCluster::new(4, DirMode::Embedded, Distribution::Subtree);
        c.mkdir("/ckpt", true);
        for i in 0..400 {
            c.create("/ckpt", &format!("rank{i:06}"), 1);
        }
        assert_eq!(c.spread_of("/ckpt"), 4);
        assert!(c.stat("/ckpt", "rank000123"));
    }

    #[test]
    fn hash_index_avoids_subordinate_interrogation() {
        // §IV-C: with the primary's collected hashes a lookup goes straight
        // to the owner; without, the primary probes subordinates.
        let run = |index: bool| {
            let mut c = MdsCluster::new(8, DirMode::Embedded, Distribution::Subtree);
            c.primary_hash_index = index;
            c.mkdir("/big", true);
            for i in 0..400 {
                c.create("/big", &format!("rank{i:06}"), 1);
            }
            let h0 = c.stats().hops;
            for i in 0..400 {
                assert!(c.stat("/big", &format!("rank{i:06}")));
            }
            c.stats().hops - h0
        };
        let with_index = run(true);
        let without = run(false);
        assert!(
            with_index * 2 < without,
            "index {with_index} hops vs broadcast {without}"
        );
    }

    #[test]
    fn missing_name_resolved_at_primary_with_index() {
        let mut c = MdsCluster::new(4, DirMode::Embedded, Distribution::Subtree);
        c.mkdir("/big", true);
        c.create("/big", "exists", 1);
        let h0 = c.stats().hops;
        assert!(!c.stat("/big", "missing"));
        // The primary's index answers the miss without touching anyone:
        // no hop was charged beyond the bookkeeping-free early return.
        assert_eq!(c.stats().hops, h0);
    }

    #[test]
    fn readdir_stat_visits_every_shard() {
        let mut c = MdsCluster::new(4, DirMode::Embedded, Distribution::HashedPath);
        c.mkdir("/p", false);
        for i in 0..100 {
            c.create("/p", &format!("f{i}"), 1);
        }
        let h0 = c.stats().hops;
        c.readdir_stat("/p");
        let hops = c.stats().hops - h0;
        assert_eq!(hops as usize, c.spread_of("/p"));
    }

    #[test]
    fn striped_readdir_charges_one_hop_per_contacted_server() {
        // Regression: the fan-out used to be billed only for shards that
        // happened to hold entries. A striped readdir is a broadcast — the
        // empty shards are contacted too (that is how you learn they are
        // empty), so the bill is exactly one hop per server.
        let mut c = MdsCluster::new(8, DirMode::Embedded, Distribution::Subtree);
        c.mkdir("/ckpt", true);
        // Two entries cannot cover eight shards: some mirrors stay
        // unmaterialized, yet all eight servers answer the broadcast.
        c.create("/ckpt", "a", 1);
        c.create("/ckpt", "b", 1);
        assert!(c.spread_of("/ckpt") < 8, "setup: some shards must be empty");
        let h0 = c.stats().hops;
        c.readdir_stat("/ckpt");
        assert_eq!(c.stats().hops - h0, 8, "broadcast bills every server");
    }

    #[test]
    fn primary_index_savings_hold_against_broadcast_readdir() {
        // Pin the §IV-C economics with the corrected accounting: indexed
        // stats stay at 1–2 hops each, while every enumeration pays the
        // full per-server broadcast. The index's per-lookup saving must
        // not be washed out by honest readdir billing.
        let servers = 8;
        let mut c = MdsCluster::new(servers, DirMode::Embedded, Distribution::Subtree);
        c.mkdir("/big", true);
        for i in 0..64 {
            c.create("/big", &format!("rank{i:04}"), 1);
        }
        let h0 = c.stats().hops;
        for i in 0..64 {
            assert!(c.stat("/big", &format!("rank{i:04}")));
        }
        let stat_hops = c.stats().hops - h0;
        assert!(
            stat_hops <= 2 * 64,
            "indexed stat is at most primary+owner: {stat_hops}"
        );
        let h1 = c.stats().hops;
        c.readdir_stat("/big");
        let readdir_hops = c.stats().hops - h1;
        assert_eq!(readdir_hops as usize, servers);
        // 64 indexed stats average under 2 hops; the same work via
        // broadcast enumeration would pay `servers` hops per round.
        assert!(stat_hops < 64 * servers as u64 / 2);
    }
}
