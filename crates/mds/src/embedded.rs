//! The embedded directory (§IV) — the paper's metadata contribution.
//!
//! "Embedded directory algorithm sequentially places all metadata of a
//! file, including inode and layout mapping, in its parents directory
//! contents." Directory content is preallocated in contiguous runs that
//! scale as the directory grows; sub-file inodes are slots inside those
//! runs; the layout mapping is stuffed into the inode tail, with extra
//! mapping blocks placed adjacently when the per-directory *fragmentation
//! degree* (extents / files) says the directory's files are fragmented.
//! Deletion lazily batches freed slots. Inode numbers encode
//! `(directory identification, offset)` and resolve through the global
//! directory table; rename moves the inode and keeps an old↔new
//! correlation.

use crate::dirtable::{DirTable, RenameCorrelation};
use crate::ids::{DirId, InodeNo, ROOT_INO};
use crate::layout::{MdsLayout, EMB_ENTRIES_PER_BLOCK, EXTENTS_PER_MAP_BLOCK, INLINE_EXTENTS};
use crate::store::{DataArea, OpEffect, ReadSet};
use std::collections::HashMap;

/// Initial directory-content preallocation, in blocks (§IV-A: "On creating
/// a new directory, persistent preallocation is first performed in its
/// contents for future subfiles creation").
pub const CONTENT_PREALLOC: u64 = 16;
/// Preallocation growth cap ("the number of preallocated blocks is scaled
/// to support large directories").
pub const CONTENT_PREALLOC_MAX: u64 = 256;
/// Deleted slots are batched and reclaimed together (§IV-A lazy free).
pub const LAZY_FREE_BATCH: usize = 64;
/// Fragmentation degree above which extra mapping blocks are preallocated
/// for new files.
pub const FRAG_DEGREE_THRESHOLD: f64 = 4.0;
/// Minimum refill of a directory's extra-mapping-block pool, in blocks.
pub const MAP_POOL_PREALLOC: u64 = 16;

#[derive(Debug, Clone)]
struct EmbFile {
    extents: u32,
    /// Extra mapping blocks (absolute), placed adjacent to the content.
    map_blocks: Vec<u64>,
}

#[derive(Debug)]
struct EmbDir {
    id: DirId,
    group: u64,
    /// Preallocated content runs (absolute start, len), in order.
    runs: Vec<(u64, u64)>,
    /// Slot -> file metadata; a slot is one embedded entry (name + inode +
    /// stuffed mapping).
    slots: HashMap<u32, EmbFile>,
    /// In-memory hash index over names (§IV-C: Htree/Btree structures "can
    /// be employed... without conflicting with the embedded organization").
    entries: HashMap<String, u32>,
    next_slot: u32,
    /// Slots freed but not yet reclaimed (lazy free batch).
    pending_free: Vec<u32>,
    /// Reusable slots after a lazy-free flush.
    free_slots: Vec<u32>,
    /// Next preallocation run size.
    prealloc_next: u64,
    /// Running extent total for the fragmentation degree.
    extents_total: u64,
    /// Preallocated pool of extra-mapping blocks (§IV-A: when serious
    /// fragmentation is detected, extra blocks are preallocated "and used
    /// to stuff mapping structures to be generated"), consumed in order.
    map_pool: Vec<(u64, u64)>,
    /// Blocks already handed out from the first pool run.
    map_pool_used: u64,
}

impl EmbDir {
    fn capacity(&self) -> u64 {
        self.runs.iter().map(|(_, l)| l).sum::<u64>() * EMB_ENTRIES_PER_BLOCK
    }

    /// Absolute content block holding `slot`.
    fn block_of(&self, slot: u32) -> u64 {
        let mut idx = slot as u64 / EMB_ENTRIES_PER_BLOCK;
        for &(s, l) in &self.runs {
            if idx < l {
                return s + idx;
            }
            idx -= l;
        }
        panic!("slot {slot} beyond directory content");
    }

    /// Fragmentation degree: "dividing the number of layout mapping units
    /// to the number of files" (§IV-A).
    fn degree(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.extents_total as f64 / self.slots.len() as f64
        }
    }

    /// Hand out `need` mapping blocks from the preallocated pool; returns
    /// what is available (possibly short — caller refills).
    fn take_map_blocks(&mut self, need: u64) -> Vec<u64> {
        let mut out = Vec::new();
        while (out.len() as u64) < need {
            let Some(&(start, len)) = self.map_pool.first() else {
                break;
            };
            if self.map_pool_used >= len {
                self.map_pool.remove(0);
                self.map_pool_used = 0;
                continue;
            }
            out.push(start + self.map_pool_used);
            self.map_pool_used += 1;
        }
        out
    }

    /// Content blocks currently holding live slots, in order.
    fn used_blocks(&self) -> Vec<u64> {
        let hi = self.next_slot as u64;
        let nblocks = hi.div_ceil(EMB_ENTRIES_PER_BLOCK);
        (0..nblocks)
            .map(|i| self.block_of((i * EMB_ENTRIES_PER_BLOCK) as u32))
            .collect()
    }
}

/// Consistency snapshot of one directory (see
/// [`EmbeddedStore::dir_snapshots`]).
#[derive(Debug, Clone)]
pub struct DirSnapshot {
    pub id: DirId,
    pub runs: Vec<(u64, u64)>,
    pub live_slots: Vec<u32>,
    pub capacity_slots: u64,
    pub extents_total: u64,
    pub extents_sum: u64,
    pub map_blocks: Vec<u64>,
    /// Slots freed but not yet reclaimed (lazy-free batch in flight).
    pub pending_free: Vec<u32>,
    /// Slots reclaimed by a lazy-free flush, available for reuse.
    pub free_slots: Vec<u32>,
    /// High-water slot mark: every live or freed slot is below this.
    pub next_slot: u32,
}

/// The embedded-directory metadata store.
#[derive(Debug)]
pub struct EmbeddedStore {
    layout: MdsLayout,
    dirs: HashMap<InodeNo, EmbDir>,
    pub dirtable: DirTable,
    pub correlation: RenameCorrelation,
    next_dir_group: u64,
    /// Stuff layout mappings into the directory content (the paper's full
    /// design). When false, only the inode embeds and overflow mappings go
    /// to blocks far from the content — the C-FFS/Ceph-style inode-only
    /// embedding the paper contrasts itself with (§II-B), used by the
    /// `ablate_embed` bench.
    pub stuff_mappings: bool,
}

impl EmbeddedStore {
    pub fn new(layout: &MdsLayout, data: &mut DataArea) -> Self {
        Self::with_stuffing(layout, data, true)
    }

    /// Constructor with explicit mapping-stuffing choice.
    pub fn with_stuffing(layout: &MdsLayout, data: &mut DataArea, stuff_mappings: bool) -> Self {
        let mut s = Self {
            layout: layout.clone(),
            dirs: HashMap::new(),
            dirtable: DirTable::new(),
            correlation: RenameCorrelation::new(),
            next_dir_group: 0,
            stuff_mappings,
        };
        let id = s.dirtable.register(ROOT_INO);
        let run = Self::prealloc_run(data, 0, None, CONTENT_PREALLOC);
        s.dirs.insert(
            ROOT_INO,
            EmbDir {
                id,
                group: 0,
                runs: vec![run],
                slots: HashMap::new(),
                entries: HashMap::new(),
                next_slot: 0,
                pending_free: Vec::new(),
                free_slots: Vec::new(),
                prealloc_next: CONTENT_PREALLOC * 2,
                extents_total: 0,
                map_pool: Vec::new(),
                map_pool_used: 0,
            },
        );
        s
    }

    /// Preallocate a content run, degrading geometrically when the free
    /// space is too fragmented for the full run (this degradation is what
    /// the aging experiment measures).
    fn prealloc_run(data: &mut DataArea, group: u64, goal: Option<u64>, want: u64) -> (u64, u64) {
        let mut want = want;
        while want > 1 {
            if let Some(s) = data.alloc_run(group, goal, want) {
                return (s, want);
            }
            want /= 2;
        }
        (data.alloc_block(group, goal), 1)
    }

    fn dir(&self, ino: InodeNo) -> &EmbDir {
        self.dirs.get(&ino).expect("directory exists")
    }

    /// Allocate a slot in `dir`, growing the content if needed.
    fn alloc_slot(&mut self, data: &mut DataArea, dir_ino: InodeNo) -> (u32, OpEffect) {
        let mut eff = OpEffect::default();
        let layout_groups = self.layout.groups;
        let dir = self.dirs.get_mut(&dir_ino).expect("directory exists");
        if let Some(slot) = dir.free_slots.pop() {
            return (slot, eff);
        }
        if dir.next_slot as u64 >= dir.capacity() {
            // Grow: scale the preallocation, place it after the last run.
            let goal = dir.runs.last().map(|&(s, l)| s + l);
            let want = dir.prealloc_next.min(CONTENT_PREALLOC_MAX);
            let run = Self::prealloc_run(data, dir.group % layout_groups, goal, want);
            dir.runs.push(run);
            dir.prealloc_next = (dir.prealloc_next * 2).min(CONTENT_PREALLOC_MAX);
            eff.dirty.push(self.layout.block_bitmap(dir.group));
        }
        let slot = dir.next_slot;
        dir.next_slot += 1;
        (slot, eff)
    }

    /// Create a regular file with `extents` layout-mapping units.
    pub fn create(
        &mut self,
        data: &mut DataArea,
        parent: InodeNo,
        name: &str,
        extents: u32,
    ) -> (InodeNo, OpEffect) {
        let mut eff = OpEffect::mutation();
        let (slot, grow_eff) = self.alloc_slot(data, parent);
        eff.merge(grow_eff);

        let dir = self.dirs.get_mut(&parent).expect("directory exists");
        let ino = InodeNo::compose(dir.id, slot);
        let content_blk = dir.block_of(slot);
        eff.dirty.push(content_blk);

        // Stuff the mapping into the inode tail; overflow goes to extra
        // mapping blocks placed adjacent to the content. When the
        // directory's fragmentation degree is high, preallocate one even
        // for files that do not (yet) need it (§IV-A).
        let need = if extents > INLINE_EXTENTS {
            (extents - INLINE_EXTENTS).div_ceil(EXTENTS_PER_MAP_BLOCK) as u64
        } else {
            0
        };
        // When the directory's fragmentation degree is high, keep the
        // mapping pool topped up ahead of demand (§IV-A: extra blocks are
        // preallocated "and used to stuff mapping structures to be
        // generated") — but inline-mapped files consume nothing.
        if self.stuff_mappings
            && need == 0
            && dir.degree() > FRAG_DEGREE_THRESHOLD
            && dir.map_pool.is_empty()
        {
            let goal = dir.runs.last().map(|&(s, l)| s + l);
            let group = dir.group;
            if let Some(start) = data.alloc_run(group, goal, MAP_POOL_PREALLOC) {
                dir.map_pool.push((start, MAP_POOL_PREALLOC));
            } else {
                dir.map_pool
                    .extend(data.alloc_chunks(group, goal, MAP_POOL_PREALLOC));
            }
            eff.dirty.push(self.layout.block_bitmap(dir.group));
        }
        let mut map_blocks = Vec::new();
        if need > 0 && !self.stuff_mappings {
            // Inode-only embedding: overflow mappings land wherever the
            // allocator finds space, far from the directory content.
            let far_group = (dir.group + self.layout.groups / 2) % self.layout.groups;
            for (start, len) in data.alloc_chunks(far_group, None, need) {
                for b in start..start + len {
                    eff.dirty.push(b);
                    map_blocks.push(b);
                }
            }
            eff.dirty.push(self.layout.block_bitmap(far_group));
        } else if need > 0 {
            // Stuff overflow mappings into blocks from the directory's
            // preallocated mapping pool, refilling the pool in contiguous
            // runs placed after the content when it empties.
            let group = dir.group;
            loop {
                let got = dir.take_map_blocks(need - map_blocks.len() as u64);
                map_blocks.extend(got);
                if map_blocks.len() as u64 >= need {
                    break;
                }
                let goal = dir
                    .map_pool
                    .last()
                    .map(|&(s, l)| s + l)
                    .or_else(|| dir.runs.last().map(|&(s, l)| s + l));
                let want = (need - map_blocks.len() as u64).max(MAP_POOL_PREALLOC);
                // Refill with the most contiguous space available: a single
                // run while the free space allows, gathered chunks once the
                // file system is too aged for useful runs.
                if let Some(start) = data.alloc_run(group, goal, want) {
                    dir.map_pool.push((start, want));
                } else {
                    // Aged free space: gather the nearest holes instead —
                    // locality beats contiguity once runs are gone.
                    dir.map_pool.extend(data.alloc_chunks(group, goal, want));
                }
                eff.dirty.push(self.layout.block_bitmap(group));
            }
            eff.dirty.extend(map_blocks.iter().copied());
        }

        dir.extents_total += extents as u64;
        dir.slots.insert(
            slot,
            EmbFile {
                extents,
                map_blocks,
            },
        );
        dir.entries.insert(name.to_string(), slot);
        (ino, eff)
    }

    /// Create a sub-directory: its inode embeds in the parent content, its
    /// own content run is preallocated in a round-robin group (retaining
    /// the 'rlov' distribution for directories, §V-A).
    pub fn mkdir(
        &mut self,
        data: &mut DataArea,
        parent: InodeNo,
        name: &str,
    ) -> (InodeNo, OpEffect) {
        let mut eff = OpEffect::mutation();
        let (slot, grow_eff) = self.alloc_slot(data, parent);
        eff.merge(grow_eff);

        let group = self.next_dir_group % self.layout.groups;
        self.next_dir_group += 1;

        let (parent_id, content_blk) = {
            let dir = self.dirs.get_mut(&parent).expect("directory exists");
            dir.entries.insert(name.to_string(), slot);
            dir.slots.insert(
                slot,
                EmbFile {
                    extents: 0,
                    map_blocks: Vec::new(),
                },
            );
            (dir.id, dir.block_of(slot))
        };
        eff.dirty.push(content_blk);

        let ino = InodeNo::compose(parent_id, slot);
        let id = self.dirtable.register(ino);
        eff.dirty.push(self.layout.dirtable_block(id.0));

        let run = Self::prealloc_run(data, group, None, CONTENT_PREALLOC);
        eff.dirty.push(self.layout.block_bitmap(group));

        self.dirs.insert(
            ino,
            EmbDir {
                id,
                group,
                runs: vec![run],
                slots: HashMap::new(),
                entries: HashMap::new(),
                next_slot: 0,
                pending_free: Vec::new(),
                free_slots: Vec::new(),
                prealloc_next: CONTENT_PREALLOC * 2,
                extents_total: 0,
                map_pool: Vec::new(),
                map_pool_used: 0,
            },
        );
        (ino, eff)
    }

    /// Name lookup: the in-memory index locates the slot; one content-block
    /// read fetches entry + inode + mapping together.
    pub fn lookup(&self, parent: InodeNo, name: &str) -> (Option<InodeNo>, OpEffect) {
        let dir = self.dir(parent);
        let mut eff = OpEffect::read_only();
        match dir.entries.get(name) {
            Some(&slot) => {
                eff.reads.push(ReadSet::raw(dir.block_of(slot)));
                (Some(InodeNo::compose(dir.id, slot)), eff)
            }
            None => (None, eff), // index is in memory: a miss reads nothing
        }
    }

    /// `stat`: the lookup's single content read already brought the inode.
    pub fn stat(&self, parent: InodeNo, name: &str) -> OpEffect {
        self.lookup(parent, name).1
    }

    /// `utime`/setattr: read-modify-write of the one content block.
    pub fn utime(&mut self, parent: InodeNo, name: &str) -> OpEffect {
        let dir = self.dir(parent);
        let mut eff = OpEffect::mutation();
        if let Some(&slot) = dir.entries.get(name) {
            let blk = dir.block_of(slot);
            eff.reads.push(ReadSet::raw(blk));
            eff.dirty.push(blk);
        }
        eff
    }

    /// `getlayout`: content block + the file's extra mapping blocks, which
    /// sit adjacent — "all disk accesses can be combined in the same disk
    /// request" (§IV-A).
    pub fn getlayout(&self, parent: InodeNo, name: &str) -> OpEffect {
        let dir = self.dir(parent);
        let mut eff = OpEffect::read_only();
        if let Some(&slot) = dir.entries.get(name) {
            let mut blocks = vec![(dir.block_of(slot), 1)];
            for &b in &dir.slots[&slot].map_blocks {
                blocks.push((b, 1));
            }
            // One submission: the scheduler merges the adjacent blocks.
            eff.reads.push(ReadSet {
                ra_ctx: None,
                blocks,
            });
        }
        eff
    }

    /// Unlink with lazy free: the content block is updated, but freed
    /// blocks/bitmap updates are batched per directory (§IV-A: "Deleting a
    /// file in directory do not release the blocks in directory content
    /// immediately. All freed files are batched").
    pub fn unlink(&mut self, data: &mut DataArea, parent: InodeNo, name: &str) -> OpEffect {
        let mut eff = OpEffect::mutation();
        let layout = self.layout.clone();
        let dir = self.dirs.get_mut(&parent).expect("directory exists");
        let Some(slot) = dir.entries.remove(name) else {
            return eff;
        };
        // No read-modify-write: the slot location is known from the
        // in-memory index and the invalidation is journaled; the content
        // block is rewritten at checkpoint.
        eff.dirty.push(dir.block_of(slot));

        let file = dir.slots.remove(&slot).expect("slot live");
        dir.extents_total -= file.extents as u64;
        // Extra mapping blocks join the lazy-free batch conceptually; we
        // release them to the allocator when the batch flushes.
        dir.pending_free.push(slot);
        let mut freed_map = file.map_blocks;

        if dir.pending_free.len() >= LAZY_FREE_BATCH {
            dir.free_slots.append(&mut dir.pending_free);
            // Reuse slots lowest-first so consecutive creations fill the
            // same content block instead of scattering writes across the
            // directory (free_slots pops from the back).
            dir.free_slots.sort_unstable_by(|a, b| b.cmp(a));
            eff.dirty.push(layout.block_bitmap(dir.group));
        }
        // Free map blocks now (they are tracked per file, not per slot).
        freed_map.sort_unstable();
        let mut i = 0;
        while i < freed_map.len() {
            let start = freed_map[i];
            let mut len = 1;
            while i + 1 < freed_map.len() && freed_map[i + 1] == start + len {
                len += 1;
                i += 1;
            }
            data.free(start, len);
            eff.freed.push((start, len));
            i += 1;
        }
        eff
    }

    /// Read the whole directory: one streaming pass over the contiguous
    /// content runs under the directory's readahead context. "When reading
    /// the whole directory (e.g., ls operations), we opt to read all
    /// content in directory, including the extra mapping blocks."
    pub fn readdir(&self, dir_ino: InodeNo) -> OpEffect {
        let dir = self.dir(dir_ino);
        let mut eff = OpEffect::read_only();
        for b in dir.used_blocks() {
            eff.reads.push(ReadSet::ctx(dir_ino.0, b));
        }
        eff
    }

    /// readdir + stat: identical reads — the inodes are *in* the content.
    pub fn readdir_stat(&self, dir_ino: InodeNo) -> OpEffect {
        let dir = self.dir(dir_ino);
        let mut eff = self.readdir(dir_ino);
        // Extra mapping blocks of fragmented files are read too; being
        // adjacent to the content they usually merge or hit readahead.
        let mut extra: Vec<u64> = dir
            .slots
            .values()
            .flat_map(|f| f.map_blocks.iter().copied())
            .collect();
        extra.sort_unstable();
        for b in extra {
            eff.reads.push(ReadSet::ctx(dir_ino.0, b));
        }
        eff
    }

    /// Rename: "because embedded directory stores inodes inside the
    /// directory that contains them, moving a file... involves moving the
    /// inode as well", the inode number changes, and the correlation table
    /// records old↔new.
    pub fn rename(
        &mut self,
        data: &mut DataArea,
        src: InodeNo,
        name: &str,
        dst: InodeNo,
        new_name: &str,
    ) -> (Option<InodeNo>, OpEffect) {
        let mut eff = OpEffect::mutation();
        // Remove from source.
        let (old_ino, file) = {
            let sdir = self.dirs.get_mut(&src).expect("src exists");
            let Some(slot) = sdir.entries.remove(name) else {
                return (None, eff);
            };
            let blk = sdir.block_of(slot);
            eff.reads.push(ReadSet::raw(blk));
            eff.dirty.push(blk);
            let file = sdir.slots.remove(&slot).expect("slot live");
            sdir.extents_total -= file.extents as u64;
            sdir.pending_free.push(slot);
            (InodeNo::compose(sdir.id, slot), file)
        };
        // Insert into destination with a new slot → new inode number.
        let (slot, grow_eff) = self.alloc_slot(data, dst);
        eff.merge(grow_eff);
        let ddir = self.dirs.get_mut(&dst).expect("dst exists");
        let new_ino = InodeNo::compose(ddir.id, slot);
        eff.dirty.push(ddir.block_of(slot));
        ddir.extents_total += file.extents as u64;
        ddir.slots.insert(slot, file);
        ddir.entries.insert(new_name.to_string(), slot);

        // If a directory was moved, its table entry re-points.
        if let Some(d) = self.dirs.remove(&old_ino) {
            let id = d.id;
            self.dirs.insert(new_ino, d);
            self.dirtable.update(id, new_ino);
            eff.dirty.push(self.layout.dirtable_block(id.0));
        }
        self.correlation.record(old_ino, new_ino);
        (Some(new_ino), eff)
    }

    /// Resolve an arbitrary inode number (§IV-B): follow any rename
    /// correlation, then use the directory-identification half through the
    /// global directory table, charging the table-block read and the
    /// content-block read.
    pub fn resolve_inode(&self, ino: InodeNo) -> (Option<InodeNo>, OpEffect) {
        let mut eff = OpEffect::read_only();
        let ino = self.correlation.resolve(ino);
        if ino == ROOT_INO {
            return (Some(ino), eff);
        }
        let id = ino.dir_id();
        let Some(parent_ino) = self.dirtable.lookup(id) else {
            return (None, eff);
        };
        eff.reads
            .push(ReadSet::raw(self.layout.dirtable_block(id.0)));
        let Some(dir) = self.dirs.get(&parent_ino) else {
            return (None, eff);
        };
        if dir.slots.contains_key(&ino.offset()) || self.dirs.contains_key(&ino) {
            eff.reads.push(ReadSet::raw(dir.block_of(ino.offset())));
            (Some(ino), eff)
        } else {
            (None, eff)
        }
    }

    /// A consistency snapshot of every directory (drives the fsck-style
    /// checker in [`crate::check`]). The snapshot is canonical — sorted by
    /// inode number, with sorted slot and block lists — so anything
    /// derived from it (checker findings, corruption-injection victim
    /// choices) is identical across processes despite the `HashMap`
    /// storage underneath.
    pub fn dir_snapshots(&self) -> Vec<(InodeNo, DirSnapshot)> {
        let mut snaps: Vec<(InodeNo, DirSnapshot)> = self
            .dirs
            .iter()
            .map(|(&ino, d)| {
                let mut map_blocks: Vec<u64> = d
                    .slots
                    .values()
                    .flat_map(|f| f.map_blocks.iter().copied())
                    .collect();
                // Unconsumed pool blocks are owned by the directory too.
                for (i, &(start, len)) in d.map_pool.iter().enumerate() {
                    let from = if i == 0 { d.map_pool_used } else { 0 };
                    map_blocks.extend(start + from..start + len);
                }
                map_blocks.sort_unstable();
                let mut live_slots: Vec<u32> = d.slots.keys().copied().collect();
                live_slots.sort_unstable();
                let snapshot = DirSnapshot {
                    id: d.id,
                    runs: d.runs.clone(),
                    live_slots,
                    capacity_slots: d.capacity(),
                    extents_total: d.extents_total,
                    extents_sum: d.slots.values().map(|f| f.extents as u64).sum(),
                    map_blocks,
                    pending_free: d.pending_free.clone(),
                    free_slots: d.free_slots.clone(),
                    next_slot: d.next_slot,
                };
                (ino, snapshot)
            })
            .collect();
        snaps.sort_unstable_by_key(|&(ino, _)| ino);
        snaps
    }

    /// Names of all entries in a directory (in-memory index).
    pub fn entry_names(&self, dir: InodeNo) -> Vec<String> {
        self.dir(dir).entries.keys().cloned().collect()
    }

    /// Fragmentation degree of a directory (diagnostics / tests).
    pub fn degree_of(&self, dir: InodeNo) -> f64 {
        self.dir(dir).degree()
    }

    /// Number of live entries (diagnostics / tests).
    pub fn dir_len(&self, dir: InodeNo) -> usize {
        self.dir(dir).entries.len()
    }

    /// Content runs of a directory (diagnostics / tests).
    pub fn runs_of(&self, dir: InodeNo) -> Vec<(u64, u64)> {
        self.dir(dir).runs.clone()
    }

    // ---- corruption hooks and fsck repairs -------------------------------
    //
    // The hooks below model on-disk metadata damage (a flipped counter, a
    // stale free-list record); the repair_* routines are what `mif-fsck`'s
    // pass 3 drives to put the store back into an invariant-clean state.
    // Repairs recompute from primary structures (the live slot map), so
    // running one twice is a no-op.

    /// Corruption hook: overwrite a directory's recorded extent total (the
    /// numerator of its fragmentation degree). Returns the old value.
    pub fn corrupt_degree_total(&mut self, dir: InodeNo, total: u64) -> u64 {
        let d = self.dirs.get_mut(&dir).expect("directory exists");
        std::mem::replace(&mut d.extents_total, total)
    }

    /// Corruption hook: push a *live* slot onto the directory's reclaimed
    /// free list, as if a stale lazy-free record survived a crash. Returns
    /// the aliased slot, or `None` when the directory has no live slots.
    pub fn corrupt_alias_free_slot(&mut self, dir: InodeNo) -> Option<u32> {
        let d = self.dirs.get_mut(&dir).expect("directory exists");
        let slot = d.slots.keys().copied().min()?;
        d.free_slots.push(slot);
        Some(slot)
    }

    /// Repair: recompute a directory's extent total from its live slots.
    /// Returns whether the stored value changed.
    pub fn repair_degree_total(&mut self, dir: InodeNo) -> bool {
        let d = self.dirs.get_mut(&dir).expect("directory exists");
        let actual: u64 = d.slots.values().map(|f| f.extents as u64).sum();
        std::mem::replace(&mut d.extents_total, actual) != actual
    }

    /// Repair: drop every free-list entry (pending or reclaimed) that
    /// refers to a live slot, and deduplicate the lists. Returns how many
    /// entries were removed.
    pub fn repair_free_slot_aliases(&mut self, dir: InodeNo) -> usize {
        let d = self.dirs.get_mut(&dir).expect("directory exists");
        let before = d.pending_free.len() + d.free_slots.len();
        let live: std::collections::HashSet<u32> = d.slots.keys().copied().collect();
        let mut seen = std::collections::HashSet::new();
        d.pending_free
            .retain(|s| !live.contains(s) && seen.insert(*s));
        d.free_slots
            .retain(|s| !live.contains(s) && seen.insert(*s));
        before - (d.pending_free.len() + d.free_slots.len())
    }

    /// Repair: re-point every directory-table entry at the directory that
    /// actually holds that identification. Returns how many entries were
    /// fixed. (The live `dirs` map is primary; the table is a derived
    /// index, exactly like an ext4 directory htree rebuild.)
    pub fn rebuild_dirtable(&mut self) -> usize {
        let mut live: Vec<(DirId, InodeNo)> =
            self.dirs.iter().map(|(&ino, d)| (d.id, ino)).collect();
        live.sort_unstable_by_key(|&(id, _)| id);
        let mut fixed = 0;
        for (id, ino) in live {
            if self.dirtable.lookup(id) != Some(ino) {
                self.dirtable.update(id, ino);
                fixed += 1;
            }
        }
        fixed
    }

    /// Repair: drop rename-correlation entries whose target inode number
    /// cannot be structurally valid (its directory identification is not
    /// in the table). Returns how many aliases were dropped.
    pub fn drop_dangling_correlations(&mut self) -> usize {
        let mut dropped = 0;
        for (old, new) in self.correlation.entries() {
            let valid = new == ROOT_INO || self.dirtable.lookup(new.dir_id()).is_some();
            if !valid && self.correlation.remove(old) {
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EmbeddedStore, DataArea, MdsLayout) {
        let layout = MdsLayout::default();
        let mut data = DataArea::new(&layout);
        let store = EmbeddedStore::new(&layout, &mut data);
        (store, data, layout)
    }

    #[test]
    fn create_dirties_only_content_block() {
        let (mut s, mut d, l) = setup();
        let (_, eff) = s.create(&mut d, ROOT_INO, "a", 1);
        assert_eq!(eff.dirty.len(), 1);
        assert!(eff.dirty[0] >= l.data_base(0), "inode lives in content");
        assert_eq!(eff.journal_blocks, 1);
    }

    #[test]
    fn inode_number_encodes_dir_and_offset() {
        let (mut s, mut d, _) = setup();
        let (dir, _) = s.mkdir(&mut d, ROOT_INO, "sub");
        let (f, _) = s.create(&mut d, dir, "x", 1);
        let dir_id = s.dirs[&dir].id;
        assert_eq!(f.dir_id(), dir_id);
        assert_eq!(f.offset(), 0);
    }

    #[test]
    fn content_grows_in_scaled_runs() {
        let (mut s, mut d, _) = setup();
        // 16 blocks * 32 entries = 512 slots initially; create 600 files.
        for i in 0..600 {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        let runs = s.runs_of(ROOT_INO);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].1, CONTENT_PREALLOC);
        assert_eq!(runs[1].1, CONTENT_PREALLOC * 2, "scaled preallocation");
    }

    #[test]
    fn lookup_reads_one_content_block() {
        let (mut s, mut d, _) = setup();
        for i in 0..600 {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        let (ino, eff) = s.lookup(ROOT_INO, "f599");
        assert!(ino.is_some());
        assert_eq!(eff.reads.len(), 1);
    }

    #[test]
    fn readdir_stat_equals_readdir_reads_when_unfragmented() {
        let (mut s, mut d, _) = setup();
        for i in 0..100 {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        let rd = s.readdir(ROOT_INO);
        let rds = s.readdir_stat(ROOT_INO);
        assert_eq!(rd.reads.len(), rds.reads.len());
        // 100 entries / 32 per block = 4 content blocks, streamed with RA.
        assert_eq!(rd.reads.len(), 4);
        assert!(rd.reads.iter().all(|r| r.ra_ctx == Some(ROOT_INO.0)));
    }

    #[test]
    fn lazy_free_batches_bitmap_updates() {
        let (mut s, mut d, l) = setup();
        for i in 0..LAZY_FREE_BATCH {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        let mut bitmap_writes = 0;
        for i in 0..LAZY_FREE_BATCH {
            let eff = s.unlink(&mut d, ROOT_INO, &format!("f{i}"));
            bitmap_writes += eff
                .dirty
                .iter()
                .filter(|&&b| b == l.block_bitmap(0))
                .count();
        }
        assert_eq!(bitmap_writes, 1, "one bitmap write per batch");
    }

    #[test]
    fn freed_slots_are_reused_after_batch() {
        let (mut s, mut d, _) = setup();
        for i in 0..LAZY_FREE_BATCH {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        for i in 0..LAZY_FREE_BATCH {
            s.unlink(&mut d, ROOT_INO, &format!("f{i}"));
        }
        let next_before = s.dirs[&ROOT_INO].next_slot;
        s.create(&mut d, ROOT_INO, "new", 1);
        assert_eq!(s.dirs[&ROOT_INO].next_slot, next_before, "slot reused");
    }

    #[test]
    fn fragmented_file_gets_adjacent_mapping_blocks() {
        let (mut s, mut d, _) = setup();
        let (_, eff) = s.create(&mut d, ROOT_INO, "big", 300);
        // 3 extra mapping blocks + content block + block bitmap dirty.
        assert!(eff.dirty.len() >= 5);
        let gl = s.getlayout(ROOT_INO, "big");
        assert_eq!(gl.reads.len(), 1, "one submission merges all blocks");
        assert_eq!(gl.reads[0].blocks.len(), 4);
    }

    #[test]
    fn high_degree_preallocates_mapping_pool() {
        let (mut s, mut d, _) = setup();
        // Raise the degree above threshold with fragmented files, then
        // drain the pool (each create consumed from it).
        for i in 0..10 {
            s.create(&mut d, ROOT_INO, &format!("frag{i}"), 40);
        }
        assert!(s.degree_of(ROOT_INO) > FRAG_DEGREE_THRESHOLD);
        s.dirs.get_mut(&ROOT_INO).unwrap().map_pool.clear();
        // Creating even an inline-mapped file refills the pool for the
        // mapping structures "to be generated" (§IV-A) ...
        let (ino, _) = s.create(&mut d, ROOT_INO, "small", 1);
        assert!(!s.dirs[&ROOT_INO].map_pool.is_empty());
        // ... while the small file itself consumes none of it.
        let slot = ino.offset();
        assert!(s.dirs[&ROOT_INO].slots[&slot].map_blocks.is_empty());
    }

    #[test]
    fn rename_changes_ino_and_correlates() {
        let (mut s, mut d, _) = setup();
        let (dst, _) = s.mkdir(&mut d, ROOT_INO, "dst");
        let (old, _) = s.create(&mut d, ROOT_INO, "a", 1);
        let (new, _eff) = s.rename(&mut d, ROOT_INO, "a", dst, "b");
        let new = new.unwrap();
        assert_ne!(old, new, "embedded rename changes the inode number");
        assert_eq!(s.correlation.resolve(old), new);
        let (found, _) = s.lookup(dst, "b");
        assert_eq!(found, Some(new));
    }

    #[test]
    fn resolve_inode_via_dirtable() {
        let (mut s, mut d, l) = setup();
        let (dir, _) = s.mkdir(&mut d, ROOT_INO, "sub");
        let (f, _) = s.create(&mut d, dir, "x", 1);
        let (resolved, eff) = s.resolve_inode(f);
        assert_eq!(resolved, Some(f));
        assert!(eff.reads.iter().any(|r| r.blocks[0].0 >= l.dirtable_base()
            && r.blocks[0].0 < l.dirtable_base() + l.dirtable_blocks));
    }

    #[test]
    fn resolve_follows_rename_correlation() {
        let (mut s, mut d, _) = setup();
        let (dst, _) = s.mkdir(&mut d, ROOT_INO, "dst");
        let (old, _) = s.create(&mut d, ROOT_INO, "a", 1);
        let (new, _) = s.rename(&mut d, ROOT_INO, "a", dst, "b");
        let (resolved, _) = s.resolve_inode(old);
        assert_eq!(resolved, new);
    }

    #[test]
    fn directory_rename_repoints_dirtable() {
        let (mut s, mut d, _) = setup();
        let (dst, _) = s.mkdir(&mut d, ROOT_INO, "dst");
        let (sub, _) = s.mkdir(&mut d, ROOT_INO, "sub");
        let (f, _) = s.create(&mut d, sub, "x", 1);
        let (new_sub, _) = s.rename(&mut d, ROOT_INO, "sub", dst, "sub2");
        let new_sub = new_sub.unwrap();
        // Files inside the moved directory still resolve.
        let (resolved, _) = s.resolve_inode(f);
        assert_eq!(resolved, Some(f));
        let (found, _) = s.lookup(new_sub, "x");
        assert_eq!(found, Some(f));
    }

    #[test]
    fn content_runs_are_near_each_other() {
        let (mut s, mut d, _) = setup();
        for i in 0..600 {
            s.create(&mut d, ROOT_INO, &format!("f{i}"), 1);
        }
        let runs = s.runs_of(ROOT_INO);
        // Second run starts exactly after the first (goal hint honoured on
        // an empty disk).
        assert_eq!(runs[1].0, runs[0].0 + runs[0].1);
    }
}
