//! Byte-level write-ahead-log encoding of [`LoggedOp`] records.
//!
//! The block-granularity [`crate::Journal`] models journal *traffic* (which
//! blocks get written when); this module models journal *content*, which is
//! what a crash-consistency checker needs: each operation becomes one
//! fixed-size record carrying a magic, a sequence number, the encoded
//! operation, and a checksum over the whole record. Recovery scans the
//! image front to back and accepts the longest clean prefix — a record with
//! a bad magic (unwritten tail), bad checksum (torn write), or unexpected
//! sequence number (stale data from a previous lap) ends the scan.
//!
//! Torn writes are first-class: [`WalWriter::append_torn`] persists only a
//! prefix of the record's bytes, exactly what a power cut mid-sector-run
//! leaves behind, and [`recover`] must (and does) reject the damaged
//! record while keeping everything before it.

use crate::mds::{DirMode, Mds};
use crate::replay::{LoggedOp, OpLog};

/// Bytes per WAL record — matches [`crate::journal::RECORD_BYTES`].
pub const WAL_RECORD_BYTES: usize = 128;

const MAGIC: u32 = 0x4D4A_574C; // "MJWL"
const HEADER_BYTES: usize = 4 + 8 + 1 + 2; // magic, seqno, tag, payload len
const CHECKSUM_OFFSET: usize = WAL_RECORD_BYTES - 8;
/// Maximum encoded-operation size one record can carry.
pub const MAX_PAYLOAD: usize = CHECKSUM_OFFSET - HEADER_BYTES;

const TAG_MKDIR: u8 = 1;
const TAG_CREATE: u8 = 2;
const TAG_UTIME: u8 = 3;
const TAG_UNLINK: u8 = 4;
const TAG_RENAME: u8 = 5;
// 16+ : defrag remap protocol records (separate log stream, same framing).
const TAG_REMAP_INTENT: u8 = 16;
const TAG_REMAP_COMMIT: u8 = 17;
// 18+ : tiering redundancy protocol records (replica / parity placement
// and teardown — the tier log stream, same framing).
const TAG_TIER_INTENT: u8 = 18;
const TAG_TIER_COMMIT: u8 = 19;
// 32+ : data-path size/layout update records (the group-commit stream).
const TAG_WRITE_COMMIT: u8 = 32;
// 48+ : sharded-namespace records (one log stream *per MDS shard*, same
// framing). 48–52 are same-shard namespace ops; 53–55 are the cross-shard
// CAS protocol (intent / head-advance / commit).
const TAG_SHARD_MKDIR: u8 = 48;
const TAG_SHARD_CREATE: u8 = 49;
const TAG_SHARD_UTIME: u8 = 50;
const TAG_SHARD_UNLINK: u8 = 51;
const TAG_SHARD_RENAME: u8 = 52;
const TAG_XS_INTENT: u8 = 53;
const TAG_XS_CAS: u8 = 54;
const TAG_XS_COMMIT: u8 = 55;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn push_name(buf: &mut Vec<u8>, name: &str) {
    assert!(
        name.len() <= u8::MAX as usize,
        "name too long for WAL record"
    );
    buf.push(name.len() as u8);
    buf.extend_from_slice(name.as_bytes());
}

fn read_name(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = *buf.get(*pos)? as usize;
    *pos += 1;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn encode_payload(op: &LoggedOp) -> (u8, Vec<u8>) {
    let mut buf = Vec::new();
    let tag = match op {
        LoggedOp::Mkdir { parent, name } => {
            buf.extend_from_slice(&parent.0.to_le_bytes());
            push_name(&mut buf, name);
            TAG_MKDIR
        }
        LoggedOp::Create {
            parent,
            name,
            extents,
        } => {
            buf.extend_from_slice(&parent.0.to_le_bytes());
            buf.extend_from_slice(&extents.to_le_bytes());
            push_name(&mut buf, name);
            TAG_CREATE
        }
        LoggedOp::Utime { parent, name } => {
            buf.extend_from_slice(&parent.0.to_le_bytes());
            push_name(&mut buf, name);
            TAG_UTIME
        }
        LoggedOp::Unlink { parent, name } => {
            buf.extend_from_slice(&parent.0.to_le_bytes());
            push_name(&mut buf, name);
            TAG_UNLINK
        }
        LoggedOp::Rename {
            src,
            name,
            dst,
            new_name,
        } => {
            buf.extend_from_slice(&src.0.to_le_bytes());
            buf.extend_from_slice(&dst.0.to_le_bytes());
            push_name(&mut buf, name);
            push_name(&mut buf, new_name);
            TAG_RENAME
        }
    };
    assert!(
        buf.len() <= MAX_PAYLOAD,
        "operation too large for one WAL record ({} > {MAX_PAYLOAD} bytes)",
        buf.len()
    );
    (tag, buf)
}

fn decode_payload(tag: u8, payload: &[u8]) -> Option<LoggedOp> {
    use crate::ids::InodeNo;
    let mut pos = 0usize;
    let op = match tag {
        TAG_MKDIR => LoggedOp::Mkdir {
            parent: InodeNo(read_u64(payload, &mut pos)?),
            name: read_name(payload, &mut pos)?,
        },
        TAG_CREATE => LoggedOp::Create {
            parent: InodeNo(read_u64(payload, &mut pos)?),
            extents: read_u32(payload, &mut pos)?,
            name: read_name(payload, &mut pos)?,
        },
        TAG_UTIME => LoggedOp::Utime {
            parent: InodeNo(read_u64(payload, &mut pos)?),
            name: read_name(payload, &mut pos)?,
        },
        TAG_UNLINK => LoggedOp::Unlink {
            parent: InodeNo(read_u64(payload, &mut pos)?),
            name: read_name(payload, &mut pos)?,
        },
        TAG_RENAME => LoggedOp::Rename {
            src: InodeNo(read_u64(payload, &mut pos)?),
            dst: InodeNo(read_u64(payload, &mut pos)?),
            name: read_name(payload, &mut pos)?,
            new_name: read_name(payload, &mut pos)?,
        },
        _ => return None,
    };
    if pos != payload.len() {
        return None; // trailing garbage inside the declared payload
    }
    Some(op)
}

/// Encode one operation as a checksummed record.
pub fn encode_record(seqno: u64, op: &LoggedOp) -> [u8; WAL_RECORD_BYTES] {
    let (tag, payload) = encode_payload(op);
    let mut rec = [0u8; WAL_RECORD_BYTES];
    rec[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    rec[4..12].copy_from_slice(&seqno.to_le_bytes());
    rec[12] = tag;
    rec[13..15].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    rec[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(&payload);
    let sum = fnv1a(&rec[..CHECKSUM_OFFSET]);
    rec[CHECKSUM_OFFSET..].copy_from_slice(&sum.to_le_bytes());
    rec
}

/// Why a recovery scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStop {
    /// The image ended exactly at a record boundary; everything was valid.
    CleanEnd,
    /// The image ended inside record `at` (fewer than 128 bytes left).
    TornTail { at: u64 },
    /// Record `at` had a valid layout but a wrong checksum (torn or
    /// corrupted write).
    BadChecksum { at: u64 },
    /// Record `at` did not start with the magic (unwritten region).
    BadMagic { at: u64 },
    /// Record `at` carried the wrong sequence number (stale data from an
    /// earlier lap of the circular region).
    SeqnoMismatch { at: u64, expected: u64, found: u64 },
    /// Record `at` had a valid checksum but an undecodable body.
    BadPayload { at: u64 },
}

/// The result of scanning a WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The longest clean prefix of operations, in commit order.
    pub ops: Vec<LoggedOp>,
    /// Why the scan stopped.
    pub stop: RecoveryStop,
}

impl Recovery {
    /// Replay the recovered prefix on a fresh MDS in `mode`.
    pub fn replay(&self, mode: DirMode) -> Mds {
        let mut log = OpLog::new();
        for op in &self.ops {
            log.record(op.clone());
        }
        log.replay(mode)
    }
}

/// Scan a WAL image and return the longest clean prefix of operations.
///
/// `first_seqno` is the sequence number the first record must carry
/// (0 for a fresh log); each following record must increment it by one.
pub fn recover(image: &[u8], first_seqno: u64) -> Recovery {
    let mut ops = Vec::new();
    let mut at = 0u64;
    let mut pos = 0usize;
    let stop = loop {
        if pos == image.len() {
            break RecoveryStop::CleanEnd;
        }
        if image.len() - pos < WAL_RECORD_BYTES {
            break RecoveryStop::TornTail { at };
        }
        let rec = &image[pos..pos + WAL_RECORD_BYTES];
        if rec[0..4] != MAGIC.to_le_bytes() {
            break RecoveryStop::BadMagic { at };
        }
        let sum = u64::from_le_bytes(rec[CHECKSUM_OFFSET..].try_into().expect("8 bytes"));
        if fnv1a(&rec[..CHECKSUM_OFFSET]) != sum {
            break RecoveryStop::BadChecksum { at };
        }
        let seqno = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
        let expected = first_seqno + at;
        if seqno != expected {
            break RecoveryStop::SeqnoMismatch {
                at,
                expected,
                found: seqno,
            };
        }
        let len = u16::from_le_bytes(rec[13..15].try_into().expect("2 bytes")) as usize;
        let op = if len <= MAX_PAYLOAD {
            decode_payload(rec[12], &rec[HEADER_BYTES..HEADER_BYTES + len])
        } else {
            None
        };
        match op {
            Some(op) => ops.push(op),
            None => break RecoveryStop::BadPayload { at },
        }
        at += 1;
        pos += WAL_RECORD_BYTES;
    };
    Recovery { ops, stop }
}

/// An append-only WAL image under construction.
#[derive(Debug, Clone, Default)]
pub struct WalWriter {
    image: Vec<u8>,
    next_seqno: u64,
}

impl WalWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one fully-persisted record.
    pub fn append(&mut self, op: &LoggedOp) {
        let rec = encode_record(self.next_seqno, op);
        self.image.extend_from_slice(&rec);
        self.next_seqno += 1;
    }

    /// Append a *torn* record: only the first `persisted` bytes reach the
    /// image (the tail reads back as zeroes, like unwritten media).
    /// Clamped to a strict prefix so the record is always damaged.
    pub fn append_torn(&mut self, op: &LoggedOp, persisted: usize) {
        let rec = encode_record(self.next_seqno, op);
        let persisted = persisted.min(WAL_RECORD_BYTES - 1);
        self.image.extend_from_slice(&rec[..persisted]);
        self.image
            .extend(std::iter::repeat_n(0u8, WAL_RECORD_BYTES - persisted));
        self.next_seqno += 1;
    }

    /// Records appended so far (torn ones included).
    pub fn len(&self) -> u64 {
        self.next_seqno
    }

    pub fn is_empty(&self) -> bool {
        self.next_seqno == 0
    }

    /// The on-media bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Consume the writer, returning the image.
    pub fn into_image(self) -> Vec<u8> {
        self.image
    }
}

/// One extent-relocation transaction's identity: which logical span of
/// which (file, column) moves where. Shared by the intent and commit
/// records so recovery can pair them field-for-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapTxn {
    /// File identity (the FS-layer `FileId`).
    pub file: u64,
    /// Stripe-column index the extents belong to (the file's extent-tree
    /// index; equal to the physical OST until a drain moves the column).
    pub ost: u32,
    /// First logical block of the remapped span.
    pub logical: u64,
    /// Length of the logical span (holes included).
    pub len: u64,
    /// Physical start of the contiguous destination run.
    pub dest: u64,
    /// Mapped blocks in the span == length of the destination run.
    pub total: u64,
    /// Physical OST holding the destination run. Same-OST defrag sets it
    /// to the column's current OST; a drain relocation points elsewhere.
    pub dst_ost: u32,
}

/// A defrag-relocation WAL record. The protocol writes `Intent` *before*
/// touching any state (naming the probed destination), and `Commit` after
/// the data copy completes but before the extent remap is applied:
///
/// * crash after `Intent` alone → roll back: the destination (if it was
///   ever claimed) holds no live data; free it.
/// * crash after `Commit` → roll forward: the copy is durable; re-apply
///   the remap (idempotently) so the mapping points at the new run.
///
/// Either way exactly one of {old mapping, new mapping} survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapOp {
    Intent(RemapTxn),
    Commit(RemapTxn),
}

impl RemapOp {
    /// The transaction both variants carry.
    pub fn txn(&self) -> &RemapTxn {
        match self {
            RemapOp::Intent(t) | RemapOp::Commit(t) => t,
        }
    }
}

fn encode_remap_payload(op: &RemapOp) -> (u8, Vec<u8>) {
    let (tag, t) = match op {
        RemapOp::Intent(t) => (TAG_REMAP_INTENT, t),
        RemapOp::Commit(t) => (TAG_REMAP_COMMIT, t),
    };
    let mut buf = Vec::with_capacity(48);
    buf.extend_from_slice(&t.file.to_le_bytes());
    buf.extend_from_slice(&t.ost.to_le_bytes());
    buf.extend_from_slice(&t.logical.to_le_bytes());
    buf.extend_from_slice(&t.len.to_le_bytes());
    buf.extend_from_slice(&t.dest.to_le_bytes());
    buf.extend_from_slice(&t.total.to_le_bytes());
    buf.extend_from_slice(&t.dst_ost.to_le_bytes());
    debug_assert!(buf.len() <= MAX_PAYLOAD);
    (tag, buf)
}

fn decode_remap_payload(tag: u8, payload: &[u8]) -> Option<RemapOp> {
    let mut pos = 0usize;
    let txn = RemapTxn {
        file: read_u64(payload, &mut pos)?,
        ost: read_u32(payload, &mut pos)?,
        logical: read_u64(payload, &mut pos)?,
        len: read_u64(payload, &mut pos)?,
        dest: read_u64(payload, &mut pos)?,
        total: read_u64(payload, &mut pos)?,
        dst_ost: read_u32(payload, &mut pos)?,
    };
    if pos != payload.len() {
        return None;
    }
    match tag {
        TAG_REMAP_INTENT => Some(RemapOp::Intent(txn)),
        TAG_REMAP_COMMIT => Some(RemapOp::Commit(txn)),
        _ => None,
    }
}

/// Encode one remap record with the standard framing (magic, seqno,
/// checksum — see [`encode_record`]).
pub fn encode_remap_record(seqno: u64, op: &RemapOp) -> [u8; WAL_RECORD_BYTES] {
    let (tag, payload) = encode_remap_payload(op);
    let mut rec = [0u8; WAL_RECORD_BYTES];
    rec[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    rec[4..12].copy_from_slice(&seqno.to_le_bytes());
    rec[12] = tag;
    rec[13..15].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    rec[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(&payload);
    let sum = fnv1a(&rec[..CHECKSUM_OFFSET]);
    rec[CHECKSUM_OFFSET..].copy_from_slice(&sum.to_le_bytes());
    rec
}

/// The result of scanning a remap WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapRecovery {
    /// The longest clean prefix of remap records, in commit order.
    pub ops: Vec<RemapOp>,
    /// Why the scan stopped.
    pub stop: RecoveryStop,
}

/// Scan a remap WAL image: same acceptance rules as [`recover`] (longest
/// clean prefix; magic, checksum, seqno and payload all validated), but
/// decoding the defrag record tags.
pub fn recover_remaps(image: &[u8], first_seqno: u64) -> RemapRecovery {
    let mut ops = Vec::new();
    let mut at = 0u64;
    let mut pos = 0usize;
    let stop = loop {
        if pos == image.len() {
            break RecoveryStop::CleanEnd;
        }
        if image.len() - pos < WAL_RECORD_BYTES {
            break RecoveryStop::TornTail { at };
        }
        let rec = &image[pos..pos + WAL_RECORD_BYTES];
        if rec[0..4] != MAGIC.to_le_bytes() {
            break RecoveryStop::BadMagic { at };
        }
        let sum = u64::from_le_bytes(rec[CHECKSUM_OFFSET..].try_into().expect("8 bytes"));
        if fnv1a(&rec[..CHECKSUM_OFFSET]) != sum {
            break RecoveryStop::BadChecksum { at };
        }
        let seqno = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
        let expected = first_seqno + at;
        if seqno != expected {
            break RecoveryStop::SeqnoMismatch {
                at,
                expected,
                found: seqno,
            };
        }
        let len = u16::from_le_bytes(rec[13..15].try_into().expect("2 bytes")) as usize;
        let op = if len <= MAX_PAYLOAD {
            decode_remap_payload(rec[12], &rec[HEADER_BYTES..HEADER_BYTES + len])
        } else {
            None
        };
        match op {
            Some(op) => ops.push(op),
            None => break RecoveryStop::BadPayload { at },
        }
        at += 1;
        pos += WAL_RECORD_BYTES;
    };
    RemapRecovery { ops, stop }
}

/// An append-only remap-WAL image under construction — the defrag engine's
/// log stream. Mirrors [`WalWriter`], including first-class torn appends
/// for crash injection.
#[derive(Debug, Clone, Default)]
pub struct RemapWal {
    image: Vec<u8>,
    next_seqno: u64,
}

impl RemapWal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one fully-persisted remap record.
    pub fn append(&mut self, op: &RemapOp) {
        let rec = encode_remap_record(self.next_seqno, op);
        self.image.extend_from_slice(&rec);
        self.next_seqno += 1;
    }

    /// Append a *torn* remap record: only the first `persisted` bytes reach
    /// the image (clamped to a strict prefix, tail zero-filled).
    pub fn append_torn(&mut self, op: &RemapOp, persisted: usize) {
        let rec = encode_remap_record(self.next_seqno, op);
        let persisted = persisted.min(WAL_RECORD_BYTES - 1);
        self.image.extend_from_slice(&rec[..persisted]);
        self.image
            .extend(std::iter::repeat_n(0u8, WAL_RECORD_BYTES - persisted));
        self.next_seqno += 1;
    }

    /// Records appended so far (torn ones included).
    pub fn len(&self) -> u64 {
        self.next_seqno
    }

    pub fn is_empty(&self) -> bool {
        self.next_seqno == 0
    }

    /// The on-media bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Consume the writer, returning the image.
    pub fn into_image(self) -> Vec<u8> {
        self.image
    }
}

/// What a tier transaction does to the redundancy layer. One byte on the
/// wire; every kind names exactly one destination run so recovery can undo
/// or redo it without consulting any other record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierKind {
    /// Place a replica of (file, src_ost, logical, len) at
    /// (dst_ost, dst_phys).
    Replica = 0,
    /// Place one parity run of stripe group `logical` of `file` (src_ost
    /// carries the group's unit length implicitly via `len`) at
    /// (dst_ost, dst_phys).
    Parity = 1,
    /// Tear down the tier run at (dst_ost, dst_phys, len): free the blocks
    /// and drop it from the tier map.
    Drop = 2,
}

impl TierKind {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(TierKind::Replica),
            1 => Some(TierKind::Parity),
            2 => Some(TierKind::Drop),
            _ => None,
        }
    }
}

/// One tier transaction's identity: which redundancy run of which file is
/// being placed or torn down, and where. Shared by the intent and commit
/// records so recovery can pair them field-for-field.
///
/// Field meaning varies slightly by [`TierKind`]:
/// * `Replica` — source span (file, src_ost, logical, len) is copied to
///   the run at (dst_ost, dst_phys).
/// * `Parity` — `logical` is the stripe-group index, `len` the unit
///   length in blocks; the parity run lands at (dst_ost, dst_phys).
/// * `Drop` — only (file, dst_ost, dst_phys, len) matter: that tier run
///   is freed and forgotten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierTxn {
    /// What this transaction does.
    pub kind: TierKind,
    /// File identity (the FS-layer `FileId`).
    pub file: u64,
    /// OST the source span lives on (replica) / first data member OST
    /// (parity) / unused for drops.
    pub src_ost: u32,
    /// First logical block of the source span, or the stripe-group index.
    pub logical: u64,
    /// Span / parity-unit / run length in blocks.
    pub len: u64,
    /// OST holding the destination run.
    pub dst_ost: u32,
    /// Physical start of the destination run on `dst_ost`.
    pub dst_phys: u64,
}

/// A tier-redundancy WAL record. Same two-phase shape as [`RemapOp`]:
/// `Intent` is durable before any state is touched, `Commit` after the
/// data (copy / parity encode / free) is done but before the tier map is
/// updated:
///
/// * crash after `Intent` alone → roll back: the destination run holds no
///   data anyone depends on; free it if it was claimed.
/// * crash after `Commit` → roll forward: re-apply the tier-map update
///   (idempotently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOp {
    Intent(TierTxn),
    Commit(TierTxn),
}

impl TierOp {
    /// The transaction both variants carry.
    pub fn txn(&self) -> &TierTxn {
        match self {
            TierOp::Intent(t) | TierOp::Commit(t) => t,
        }
    }
}

fn encode_tier_payload(op: &TierOp) -> (u8, Vec<u8>) {
    let (tag, t) = match op {
        TierOp::Intent(t) => (TAG_TIER_INTENT, t),
        TierOp::Commit(t) => (TAG_TIER_COMMIT, t),
    };
    let mut buf = Vec::with_capacity(41);
    buf.push(t.kind as u8);
    buf.extend_from_slice(&t.file.to_le_bytes());
    buf.extend_from_slice(&t.src_ost.to_le_bytes());
    buf.extend_from_slice(&t.logical.to_le_bytes());
    buf.extend_from_slice(&t.len.to_le_bytes());
    buf.extend_from_slice(&t.dst_ost.to_le_bytes());
    buf.extend_from_slice(&t.dst_phys.to_le_bytes());
    debug_assert!(buf.len() <= MAX_PAYLOAD);
    (tag, buf)
}

fn decode_tier_payload(tag: u8, payload: &[u8]) -> Option<TierOp> {
    let mut pos = 0usize;
    let kind = TierKind::from_u8(*payload.first()?)?;
    pos += 1;
    let txn = TierTxn {
        kind,
        file: read_u64(payload, &mut pos)?,
        src_ost: read_u32(payload, &mut pos)?,
        logical: read_u64(payload, &mut pos)?,
        len: read_u64(payload, &mut pos)?,
        dst_ost: read_u32(payload, &mut pos)?,
        dst_phys: read_u64(payload, &mut pos)?,
    };
    if pos != payload.len() {
        return None;
    }
    match tag {
        TAG_TIER_INTENT => Some(TierOp::Intent(txn)),
        TAG_TIER_COMMIT => Some(TierOp::Commit(txn)),
        _ => None,
    }
}

/// Encode one tier record with the standard framing (magic, seqno,
/// checksum — see [`encode_record`]).
pub fn encode_tier_record(seqno: u64, op: &TierOp) -> [u8; WAL_RECORD_BYTES] {
    let (tag, payload) = encode_tier_payload(op);
    let mut rec = [0u8; WAL_RECORD_BYTES];
    rec[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    rec[4..12].copy_from_slice(&seqno.to_le_bytes());
    rec[12] = tag;
    rec[13..15].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    rec[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(&payload);
    let sum = fnv1a(&rec[..CHECKSUM_OFFSET]);
    rec[CHECKSUM_OFFSET..].copy_from_slice(&sum.to_le_bytes());
    rec
}

/// The result of scanning a tier WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct TierRecovery {
    /// The longest clean prefix of tier records, in commit order.
    pub ops: Vec<TierOp>,
    /// Why the scan stopped.
    pub stop: RecoveryStop,
}

/// Scan a tier WAL image: same acceptance rules as [`recover`] (longest
/// clean prefix; magic, checksum, seqno and payload all validated), but
/// decoding the tier-redundancy record tags.
pub fn recover_tier(image: &[u8], first_seqno: u64) -> TierRecovery {
    let mut ops = Vec::new();
    let mut at = 0u64;
    let mut pos = 0usize;
    let stop = loop {
        if pos == image.len() {
            break RecoveryStop::CleanEnd;
        }
        if image.len() - pos < WAL_RECORD_BYTES {
            break RecoveryStop::TornTail { at };
        }
        let rec = &image[pos..pos + WAL_RECORD_BYTES];
        if rec[0..4] != MAGIC.to_le_bytes() {
            break RecoveryStop::BadMagic { at };
        }
        let sum = u64::from_le_bytes(rec[CHECKSUM_OFFSET..].try_into().expect("8 bytes"));
        if fnv1a(&rec[..CHECKSUM_OFFSET]) != sum {
            break RecoveryStop::BadChecksum { at };
        }
        let seqno = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
        let expected = first_seqno + at;
        if seqno != expected {
            break RecoveryStop::SeqnoMismatch {
                at,
                expected,
                found: seqno,
            };
        }
        let len = u16::from_le_bytes(rec[13..15].try_into().expect("2 bytes")) as usize;
        let op = if len <= MAX_PAYLOAD {
            decode_tier_payload(rec[12], &rec[HEADER_BYTES..HEADER_BYTES + len])
        } else {
            None
        };
        match op {
            Some(op) => ops.push(op),
            None => break RecoveryStop::BadPayload { at },
        }
        at += 1;
        pos += WAL_RECORD_BYTES;
    };
    TierRecovery { ops, stop }
}

/// An append-only tier-WAL image under construction — the redundancy
/// engine's log stream. Mirrors [`RemapWal`], including first-class torn
/// appends for crash injection.
#[derive(Debug, Clone, Default)]
pub struct TierWal {
    image: Vec<u8>,
    next_seqno: u64,
}

impl TierWal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one fully-persisted tier record.
    pub fn append(&mut self, op: &TierOp) {
        let rec = encode_tier_record(self.next_seqno, op);
        self.image.extend_from_slice(&rec);
        self.next_seqno += 1;
    }

    /// Append a *torn* tier record: only the first `persisted` bytes reach
    /// the image (clamped to a strict prefix, tail zero-filled).
    pub fn append_torn(&mut self, op: &TierOp, persisted: usize) {
        let rec = encode_tier_record(self.next_seqno, op);
        let persisted = persisted.min(WAL_RECORD_BYTES - 1);
        self.image.extend_from_slice(&rec[..persisted]);
        self.image
            .extend(std::iter::repeat_n(0u8, WAL_RECORD_BYTES - persisted));
        self.next_seqno += 1;
    }

    /// Records appended so far (torn ones included).
    pub fn len(&self) -> u64 {
        self.next_seqno
    }

    pub fn is_empty(&self) -> bool {
        self.next_seqno == 0
    }

    /// The on-media bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Consume the writer, returning the image.
    pub fn into_image(self) -> Vec<u8> {
        self.image
    }
}

/// One data-path write's durable intent: which stream extended which file
/// where. These records flow through the group-commit WAL
/// ([`crate::GroupCommitWal`]): client threads stage them lock-free, one
/// flush leader persists many at once, and recovery replays the longest
/// clean prefix so a crash loses at most the writes whose commit was
/// never acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteCommit {
    /// File identity (the FS-layer `FileId`).
    pub file: u64,
    /// Stream that issued the write (`StreamId::as_u64`).
    pub stream: u64,
    /// First logical block of the write.
    pub offset: u64,
    /// Length in blocks.
    pub len: u64,
}

/// Encode one write-commit record with the standard framing (magic,
/// seqno, checksum — see [`encode_record`]).
pub fn encode_write_record(seqno: u64, w: &WriteCommit) -> [u8; WAL_RECORD_BYTES] {
    let mut payload = Vec::with_capacity(32);
    payload.extend_from_slice(&w.file.to_le_bytes());
    payload.extend_from_slice(&w.stream.to_le_bytes());
    payload.extend_from_slice(&w.offset.to_le_bytes());
    payload.extend_from_slice(&w.len.to_le_bytes());
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut rec = [0u8; WAL_RECORD_BYTES];
    rec[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    rec[4..12].copy_from_slice(&seqno.to_le_bytes());
    rec[12] = TAG_WRITE_COMMIT;
    rec[13..15].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    rec[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(&payload);
    let sum = fnv1a(&rec[..CHECKSUM_OFFSET]);
    rec[CHECKSUM_OFFSET..].copy_from_slice(&sum.to_le_bytes());
    rec
}

fn decode_write_payload(tag: u8, payload: &[u8]) -> Option<WriteCommit> {
    if tag != TAG_WRITE_COMMIT {
        return None;
    }
    let mut pos = 0usize;
    let w = WriteCommit {
        file: read_u64(payload, &mut pos)?,
        stream: read_u64(payload, &mut pos)?,
        offset: read_u64(payload, &mut pos)?,
        len: read_u64(payload, &mut pos)?,
    };
    (pos == payload.len()).then_some(w)
}

/// The result of scanning a write-commit WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteRecovery {
    /// The longest clean prefix of write commits, in commit order.
    pub ops: Vec<WriteCommit>,
    /// Why the scan stopped.
    pub stop: RecoveryStop,
}

/// Scan a write-commit WAL image: same acceptance rules as [`recover`]
/// (longest clean prefix; magic, checksum, seqno and payload all
/// validated), decoding the data-path record tag. Because every record
/// carries its own checksum and seqno, a flush torn *inside* a merged
/// multi-record buffer recovers exactly the records persisted whole —
/// all-or-prefix per record, never a partial record.
pub fn recover_writes(image: &[u8], first_seqno: u64) -> WriteRecovery {
    let mut ops = Vec::new();
    let mut at = 0u64;
    let mut pos = 0usize;
    let stop = loop {
        if pos == image.len() {
            break RecoveryStop::CleanEnd;
        }
        if image.len() - pos < WAL_RECORD_BYTES {
            break RecoveryStop::TornTail { at };
        }
        let rec = &image[pos..pos + WAL_RECORD_BYTES];
        if rec[0..4] != MAGIC.to_le_bytes() {
            break RecoveryStop::BadMagic { at };
        }
        let sum = u64::from_le_bytes(rec[CHECKSUM_OFFSET..].try_into().expect("8 bytes"));
        if fnv1a(&rec[..CHECKSUM_OFFSET]) != sum {
            break RecoveryStop::BadChecksum { at };
        }
        let seqno = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
        let expected = first_seqno + at;
        if seqno != expected {
            break RecoveryStop::SeqnoMismatch {
                at,
                expected,
                found: seqno,
            };
        }
        let len = u16::from_le_bytes(rec[13..15].try_into().expect("2 bytes")) as usize;
        let op = if len <= MAX_PAYLOAD {
            decode_write_payload(rec[12], &rec[HEADER_BYTES..HEADER_BYTES + len])
        } else {
            None
        };
        match op {
            Some(op) => ops.push(op),
            None => break RecoveryStop::BadPayload { at },
        }
        at += 1;
        pos += WAL_RECORD_BYTES;
    };
    WriteRecovery { ops, stop }
}

/// A same-shard namespace operation as journaled by one MDS shard.
///
/// Sharded records name directories by their *global directory id* (the
/// [`crate::ShardMap`] key) rather than a per-shard inode number: inode
/// numbers are a per-shard artifact that recovery re-derives, while the
/// directory id is stable across shard counts and replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardNsOp {
    /// Register global directory `dir` (striped directories additionally
    /// get a seat on every shard, re-derived at recovery from the flag).
    Mkdir {
        dir: u32,
        striped: bool,
        name: String,
    },
    /// Create `name` with `extents` extents in `dir` (on the journaling
    /// shard — the entry's shard is re-derived from the stable map).
    Create {
        dir: u32,
        extents: u32,
        name: String,
    },
    Utime {
        dir: u32,
        name: String,
    },
    Unlink {
        dir: u32,
        name: String,
    },
    /// Same-home rename: both directories live on the journaling shard,
    /// so one record on one log stream carries the whole operation.
    Rename {
        src: u32,
        dst: u32,
        name: String,
        new_name: String,
    },
}

/// One cross-shard rename transaction's identity: enough for recovery on
/// *either* shard to finish or forget the operation without consulting the
/// other shard's log. Carries the operation heads the coordinator observed
/// so a recovered head table never regresses below what was promised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XsTxn {
    /// Coordinator-assigned transaction id (globally unique).
    pub txn: u64,
    /// Global directory id the entry leaves.
    pub src_dir: u32,
    /// Global directory id the entry lands in.
    pub dst_dir: u32,
    /// Shard holding `src_dir`.
    pub src_shard: u32,
    /// Shard holding `dst_dir`.
    pub dst_shard: u32,
    /// `src_dir`'s operation head as observed when the intent was staged.
    pub src_head: u64,
    /// `dst_dir`'s operation head as observed when the intent was staged.
    pub dst_head: u64,
    pub name: String,
    pub new_name: String,
}

/// One sharded-namespace WAL record body.
///
/// The cross-shard protocol journals, in order: `XsIntent` on both shards
/// (no state change — a crash here rolls back to a no-op), one `XsCas` per
/// successful head advance, and `XsCommit` on both shards. Recovery rolls
/// a transaction *forward* iff any recovered stream holds its `XsCommit`;
/// otherwise the intent is forgotten.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOp {
    Ns(ShardNsOp),
    XsIntent(XsTxn),
    /// Directory `dir`'s operation head advanced `old` → `new` on the
    /// journaling shard, on behalf of transaction `txn`.
    XsCas {
        txn: u64,
        dir: u32,
        old: u64,
        new: u64,
    },
    XsCommit {
        txn: u64,
    },
}

/// One sharded-namespace WAL record: a globally-ordered sequence stamp
/// plus the operation. Each shard journals to its own stream; `gseq` is
/// drawn from one global counter so multi-stream recovery can merge-sort
/// the records back into a single total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    pub gseq: u64,
    pub op: ShardOp,
}

fn encode_shard_payload(rec: &ShardRecord) -> (u8, Vec<u8>) {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&rec.gseq.to_le_bytes());
    let tag = match &rec.op {
        ShardOp::Ns(ShardNsOp::Mkdir { dir, striped, name }) => {
            buf.extend_from_slice(&dir.to_le_bytes());
            buf.push(*striped as u8);
            push_name(&mut buf, name);
            TAG_SHARD_MKDIR
        }
        ShardOp::Ns(ShardNsOp::Create { dir, extents, name }) => {
            buf.extend_from_slice(&dir.to_le_bytes());
            buf.extend_from_slice(&extents.to_le_bytes());
            push_name(&mut buf, name);
            TAG_SHARD_CREATE
        }
        ShardOp::Ns(ShardNsOp::Utime { dir, name }) => {
            buf.extend_from_slice(&dir.to_le_bytes());
            push_name(&mut buf, name);
            TAG_SHARD_UTIME
        }
        ShardOp::Ns(ShardNsOp::Unlink { dir, name }) => {
            buf.extend_from_slice(&dir.to_le_bytes());
            push_name(&mut buf, name);
            TAG_SHARD_UNLINK
        }
        ShardOp::Ns(ShardNsOp::Rename {
            src,
            dst,
            name,
            new_name,
        }) => {
            buf.extend_from_slice(&src.to_le_bytes());
            buf.extend_from_slice(&dst.to_le_bytes());
            push_name(&mut buf, name);
            push_name(&mut buf, new_name);
            TAG_SHARD_RENAME
        }
        ShardOp::XsIntent(t) => {
            buf.extend_from_slice(&t.txn.to_le_bytes());
            buf.extend_from_slice(&t.src_dir.to_le_bytes());
            buf.extend_from_slice(&t.dst_dir.to_le_bytes());
            buf.extend_from_slice(&t.src_shard.to_le_bytes());
            buf.extend_from_slice(&t.dst_shard.to_le_bytes());
            buf.extend_from_slice(&t.src_head.to_le_bytes());
            buf.extend_from_slice(&t.dst_head.to_le_bytes());
            push_name(&mut buf, &t.name);
            push_name(&mut buf, &t.new_name);
            TAG_XS_INTENT
        }
        ShardOp::XsCas { txn, dir, old, new } => {
            buf.extend_from_slice(&txn.to_le_bytes());
            buf.extend_from_slice(&dir.to_le_bytes());
            buf.extend_from_slice(&old.to_le_bytes());
            buf.extend_from_slice(&new.to_le_bytes());
            TAG_XS_CAS
        }
        ShardOp::XsCommit { txn } => {
            buf.extend_from_slice(&txn.to_le_bytes());
            TAG_XS_COMMIT
        }
    };
    assert!(
        buf.len() <= MAX_PAYLOAD,
        "shard record too large for one WAL record ({} > {MAX_PAYLOAD} bytes)",
        buf.len()
    );
    (tag, buf)
}

fn decode_shard_payload(tag: u8, payload: &[u8]) -> Option<ShardRecord> {
    let mut pos = 0usize;
    let gseq = read_u64(payload, &mut pos)?;
    let op = match tag {
        TAG_SHARD_MKDIR => {
            let dir = read_u32(payload, &mut pos)?;
            let striped = match *payload.get(pos)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            pos += 1;
            ShardOp::Ns(ShardNsOp::Mkdir {
                dir,
                striped,
                name: read_name(payload, &mut pos)?,
            })
        }
        TAG_SHARD_CREATE => ShardOp::Ns(ShardNsOp::Create {
            dir: read_u32(payload, &mut pos)?,
            extents: read_u32(payload, &mut pos)?,
            name: read_name(payload, &mut pos)?,
        }),
        TAG_SHARD_UTIME => ShardOp::Ns(ShardNsOp::Utime {
            dir: read_u32(payload, &mut pos)?,
            name: read_name(payload, &mut pos)?,
        }),
        TAG_SHARD_UNLINK => ShardOp::Ns(ShardNsOp::Unlink {
            dir: read_u32(payload, &mut pos)?,
            name: read_name(payload, &mut pos)?,
        }),
        TAG_SHARD_RENAME => ShardOp::Ns(ShardNsOp::Rename {
            src: read_u32(payload, &mut pos)?,
            dst: read_u32(payload, &mut pos)?,
            name: read_name(payload, &mut pos)?,
            new_name: read_name(payload, &mut pos)?,
        }),
        TAG_XS_INTENT => ShardOp::XsIntent(XsTxn {
            txn: read_u64(payload, &mut pos)?,
            src_dir: read_u32(payload, &mut pos)?,
            dst_dir: read_u32(payload, &mut pos)?,
            src_shard: read_u32(payload, &mut pos)?,
            dst_shard: read_u32(payload, &mut pos)?,
            src_head: read_u64(payload, &mut pos)?,
            dst_head: read_u64(payload, &mut pos)?,
            name: read_name(payload, &mut pos)?,
            new_name: read_name(payload, &mut pos)?,
        }),
        TAG_XS_CAS => ShardOp::XsCas {
            txn: read_u64(payload, &mut pos)?,
            dir: read_u32(payload, &mut pos)?,
            old: read_u64(payload, &mut pos)?,
            new: read_u64(payload, &mut pos)?,
        },
        TAG_XS_COMMIT => ShardOp::XsCommit {
            txn: read_u64(payload, &mut pos)?,
        },
        _ => return None,
    };
    if pos != payload.len() {
        return None;
    }
    Some(ShardRecord { gseq, op })
}

/// Encode one shard record with the standard framing (magic, seqno,
/// checksum — see [`encode_record`]).
pub fn encode_shard_record(seqno: u64, rec: &ShardRecord) -> [u8; WAL_RECORD_BYTES] {
    let (tag, payload) = encode_shard_payload(rec);
    let mut out = [0u8; WAL_RECORD_BYTES];
    out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    out[4..12].copy_from_slice(&seqno.to_le_bytes());
    out[12] = tag;
    out[13..15].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    out[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(&payload);
    let sum = fnv1a(&out[..CHECKSUM_OFFSET]);
    out[CHECKSUM_OFFSET..].copy_from_slice(&sum.to_le_bytes());
    out
}

/// The result of scanning one shard's WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecovery {
    /// The longest clean prefix of shard records, in this stream's
    /// append order (merge-sort streams by `gseq` for the global order).
    pub records: Vec<ShardRecord>,
    /// Why the scan stopped.
    pub stop: RecoveryStop,
}

/// Scan a shard WAL image: same acceptance rules as [`recover`] (longest
/// clean prefix; magic, checksum, seqno and payload all validated), but
/// decoding the sharded-namespace record tags.
pub fn recover_shard(image: &[u8], first_seqno: u64) -> ShardRecovery {
    let mut records = Vec::new();
    let mut at = 0u64;
    let mut pos = 0usize;
    let stop = loop {
        if pos == image.len() {
            break RecoveryStop::CleanEnd;
        }
        if image.len() - pos < WAL_RECORD_BYTES {
            break RecoveryStop::TornTail { at };
        }
        let rec = &image[pos..pos + WAL_RECORD_BYTES];
        if rec[0..4] != MAGIC.to_le_bytes() {
            break RecoveryStop::BadMagic { at };
        }
        let sum = u64::from_le_bytes(rec[CHECKSUM_OFFSET..].try_into().expect("8 bytes"));
        if fnv1a(&rec[..CHECKSUM_OFFSET]) != sum {
            break RecoveryStop::BadChecksum { at };
        }
        let seqno = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
        let expected = first_seqno + at;
        if seqno != expected {
            break RecoveryStop::SeqnoMismatch {
                at,
                expected,
                found: seqno,
            };
        }
        let len = u16::from_le_bytes(rec[13..15].try_into().expect("2 bytes")) as usize;
        let op = if len <= MAX_PAYLOAD {
            decode_shard_payload(rec[12], &rec[HEADER_BYTES..HEADER_BYTES + len])
        } else {
            None
        };
        match op {
            Some(op) => records.push(op),
            None => break RecoveryStop::BadPayload { at },
        }
        at += 1;
        pos += WAL_RECORD_BYTES;
    };
    ShardRecovery { records, stop }
}

/// An append-only shard-WAL image under construction — one MDS shard's
/// log stream. Mirrors [`RemapWal`], including first-class torn appends
/// for crash injection.
#[derive(Debug, Clone, Default)]
pub struct ShardWal {
    image: Vec<u8>,
    next_seqno: u64,
}

impl ShardWal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one fully-persisted shard record.
    pub fn append(&mut self, rec: &ShardRecord) {
        let bytes = encode_shard_record(self.next_seqno, rec);
        self.image.extend_from_slice(&bytes);
        self.next_seqno += 1;
    }

    /// Append a *torn* shard record: only the first `persisted` bytes
    /// reach the image (clamped to a strict prefix, tail zero-filled).
    pub fn append_torn(&mut self, rec: &ShardRecord, persisted: usize) {
        let bytes = encode_shard_record(self.next_seqno, rec);
        let persisted = persisted.min(WAL_RECORD_BYTES - 1);
        self.image.extend_from_slice(&bytes[..persisted]);
        self.image
            .extend(std::iter::repeat_n(0u8, WAL_RECORD_BYTES - persisted));
        self.next_seqno += 1;
    }

    /// Records appended so far (torn ones included).
    pub fn len(&self) -> u64 {
        self.next_seqno
    }

    pub fn is_empty(&self) -> bool {
        self.next_seqno == 0
    }

    /// The on-media bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Consume the writer, returning the image.
    pub fn into_image(self) -> Vec<u8> {
        self.image
    }
}

/// Encode a whole redo log as a WAL image (seqnos from 0).
pub fn encode_log(log: &OpLog) -> Vec<u8> {
    let mut w = WalWriter::new();
    for op in &log.ops {
        w.append(op);
    }
    w.into_image()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ROOT_INO;

    fn sample_ops() -> Vec<LoggedOp> {
        vec![
            LoggedOp::Mkdir {
                parent: ROOT_INO,
                name: "d".into(),
            },
            LoggedOp::Create {
                parent: ROOT_INO,
                name: "file-1".into(),
                extents: 3,
            },
            LoggedOp::Utime {
                parent: ROOT_INO,
                name: "file-1".into(),
            },
            LoggedOp::Rename {
                src: ROOT_INO,
                name: "file-1".into(),
                dst: ROOT_INO,
                new_name: "file-2".into(),
            },
            LoggedOp::Unlink {
                parent: ROOT_INO,
                name: "file-2".into(),
            },
        ]
    }

    #[test]
    fn every_op_round_trips() {
        for (i, op) in sample_ops().iter().enumerate() {
            let rec = encode_record(i as u64, op);
            let got = recover(&rec, i as u64);
            assert_eq!(got.ops, vec![op.clone()], "op {i}");
            assert_eq!(got.stop, RecoveryStop::CleanEnd);
        }
    }

    #[test]
    fn clean_image_recovers_fully() {
        let mut w = WalWriter::new();
        for op in sample_ops() {
            w.append(&op);
        }
        let r = recover(w.image(), 0);
        assert_eq!(r.ops, sample_ops());
        assert_eq!(r.stop, RecoveryStop::CleanEnd);
    }

    #[test]
    fn torn_record_ends_the_prefix() {
        let ops = sample_ops();
        for persisted in [0usize, 1, 17, 64, 127] {
            let mut w = WalWriter::new();
            w.append(&ops[0]);
            w.append(&ops[1]);
            w.append_torn(&ops[2], persisted);
            let r = recover(w.image(), 0);
            assert_eq!(r.ops, ops[..2].to_vec(), "persisted={persisted}");
            assert!(
                matches!(
                    r.stop,
                    RecoveryStop::BadChecksum { at: 2 } | RecoveryStop::BadMagic { at: 2 }
                ),
                "persisted={persisted}: {:?}",
                r.stop
            );
        }
    }

    #[test]
    fn truncated_tail_is_detected() {
        let mut w = WalWriter::new();
        for op in sample_ops() {
            w.append(&op);
        }
        let img = w.image();
        let r = recover(&img[..img.len() - 40], 0);
        assert_eq!(r.ops.len(), sample_ops().len() - 1);
        assert_eq!(r.stop, RecoveryStop::TornTail { at: 4 });
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let ops = sample_ops();
        let mut w = WalWriter::new();
        for op in &ops {
            w.append(op);
        }
        let mut img = w.into_image();
        // Flip one payload bit in record 1.
        img[WAL_RECORD_BYTES + 40] ^= 0x04;
        let r = recover(&img, 0);
        assert_eq!(r.ops, ops[..1].to_vec());
        assert_eq!(r.stop, RecoveryStop::BadChecksum { at: 1 });
    }

    #[test]
    fn stale_lap_is_rejected_by_seqno() {
        // A record that is internally valid but carries an old seqno (left
        // over from a previous lap of the circular region) must not be
        // replayed.
        let ops = sample_ops();
        let mut img = Vec::new();
        img.extend_from_slice(&encode_record(7, &ops[0]));
        img.extend_from_slice(&encode_record(3, &ops[1])); // stale
        let r = recover(&img, 7);
        assert_eq!(r.ops, ops[..1].to_vec());
        assert_eq!(
            r.stop,
            RecoveryStop::SeqnoMismatch {
                at: 1,
                expected: 8,
                found: 3
            }
        );
    }

    #[test]
    fn unwritten_tail_stops_with_bad_magic() {
        let mut w = WalWriter::new();
        w.append(&sample_ops()[0]);
        let mut img = w.into_image();
        img.extend(std::iter::repeat_n(0u8, WAL_RECORD_BYTES));
        let r = recover(&img, 0);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(r.stop, RecoveryStop::BadMagic { at: 1 });
    }

    fn sample_txn() -> RemapTxn {
        RemapTxn {
            file: 7,
            ost: 2,
            logical: 128,
            len: 96,
            dest: 4096,
            total: 80,
            dst_ost: 2,
        }
    }

    #[test]
    fn remap_records_round_trip() {
        let mut w = RemapWal::new();
        w.append(&RemapOp::Intent(sample_txn()));
        w.append(&RemapOp::Commit(sample_txn()));
        let r = recover_remaps(w.image(), 0);
        assert_eq!(
            r.ops,
            vec![RemapOp::Intent(sample_txn()), RemapOp::Commit(sample_txn())]
        );
        assert_eq!(r.stop, RecoveryStop::CleanEnd);
    }

    #[test]
    fn torn_remap_record_ends_the_prefix() {
        for persisted in [0usize, 1, 20, 43, 119, 127] {
            let mut w = RemapWal::new();
            w.append(&RemapOp::Intent(sample_txn()));
            w.append_torn(&RemapOp::Commit(sample_txn()), persisted);
            let r = recover_remaps(w.image(), 0);
            assert_eq!(
                r.ops,
                vec![RemapOp::Intent(sample_txn())],
                "persisted={persisted}"
            );
            assert!(
                matches!(
                    r.stop,
                    RecoveryStop::BadChecksum { at: 1 } | RecoveryStop::BadMagic { at: 1 }
                ),
                "persisted={persisted}: {:?}",
                r.stop
            );
        }
    }

    #[test]
    fn remap_scan_rejects_metadata_tags_and_vice_versa() {
        // A metadata record in the remap stream stops the scan (BadPayload),
        // and a remap record in the metadata stream does the same: the two
        // log streams cannot silently replay each other's records.
        let meta = encode_record(0, &sample_ops()[0]);
        let r = recover_remaps(&meta, 0);
        assert!(r.ops.is_empty());
        assert_eq!(r.stop, RecoveryStop::BadPayload { at: 0 });

        let remap = encode_remap_record(0, &RemapOp::Intent(sample_txn()));
        let r = recover(&remap, 0);
        assert!(r.ops.is_empty());
        assert_eq!(r.stop, RecoveryStop::BadPayload { at: 0 });
    }

    #[test]
    fn stale_remap_lap_rejected_by_seqno() {
        let mut img = Vec::new();
        img.extend_from_slice(&encode_remap_record(9, &RemapOp::Intent(sample_txn())));
        img.extend_from_slice(&encode_remap_record(4, &RemapOp::Commit(sample_txn())));
        let r = recover_remaps(&img, 9);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(
            r.stop,
            RecoveryStop::SeqnoMismatch {
                at: 1,
                expected: 10,
                found: 4
            }
        );
    }

    fn sample_tier_txn(kind: TierKind) -> TierTxn {
        TierTxn {
            kind,
            file: 11,
            src_ost: 1,
            logical: 256,
            len: 64,
            dst_ost: 3,
            dst_phys: 8192,
        }
    }

    #[test]
    fn tier_records_round_trip_every_kind() {
        let mut w = TierWal::new();
        let mut want = Vec::new();
        for kind in [TierKind::Replica, TierKind::Parity, TierKind::Drop] {
            let t = sample_tier_txn(kind);
            w.append(&TierOp::Intent(t));
            w.append(&TierOp::Commit(t));
            want.push(TierOp::Intent(t));
            want.push(TierOp::Commit(t));
        }
        let r = recover_tier(w.image(), 0);
        assert_eq!(r.ops, want);
        assert_eq!(r.stop, RecoveryStop::CleanEnd);
    }

    #[test]
    fn torn_tier_record_ends_the_prefix() {
        for persisted in [0usize, 1, 16, 40, 119, 127] {
            let mut w = TierWal::new();
            w.append(&TierOp::Intent(sample_tier_txn(TierKind::Replica)));
            w.append_torn(
                &TierOp::Commit(sample_tier_txn(TierKind::Replica)),
                persisted,
            );
            let r = recover_tier(w.image(), 0);
            assert_eq!(
                r.ops,
                vec![TierOp::Intent(sample_tier_txn(TierKind::Replica))],
                "persisted={persisted}"
            );
            assert!(
                matches!(
                    r.stop,
                    RecoveryStop::BadChecksum { at: 1 } | RecoveryStop::BadMagic { at: 1 }
                ),
                "persisted={persisted}: {:?}",
                r.stop
            );
        }
    }

    #[test]
    fn tier_scan_rejects_foreign_tags_and_vice_versa() {
        // The tier stream cannot replay metadata, remap, or write-commit
        // records, and none of those scans accepts a tier record.
        let tier = encode_tier_record(0, &TierOp::Intent(sample_tier_txn(TierKind::Parity)));
        assert_eq!(recover(&tier, 0).stop, RecoveryStop::BadPayload { at: 0 });
        assert_eq!(
            recover_remaps(&tier, 0).stop,
            RecoveryStop::BadPayload { at: 0 }
        );
        assert_eq!(
            recover_writes(&tier, 0).stop,
            RecoveryStop::BadPayload { at: 0 }
        );

        for foreign in [
            encode_record(0, &sample_ops()[0]),
            encode_remap_record(0, &RemapOp::Intent(sample_txn())),
            encode_write_record(0, &sample_write(0)),
        ] {
            let r = recover_tier(&foreign, 0);
            assert!(r.ops.is_empty());
            assert_eq!(r.stop, RecoveryStop::BadPayload { at: 0 });
        }
    }

    #[test]
    fn tier_bad_kind_byte_is_bad_payload() {
        let mut rec = encode_tier_record(0, &TierOp::Commit(sample_tier_txn(TierKind::Drop)));
        rec[HEADER_BYTES] = 9; // no such TierKind
        let sum = fnv1a(&rec[..CHECKSUM_OFFSET]);
        rec[CHECKSUM_OFFSET..].copy_from_slice(&sum.to_le_bytes());
        let r = recover_tier(&rec, 0);
        assert!(r.ops.is_empty());
        assert_eq!(r.stop, RecoveryStop::BadPayload { at: 0 });
    }

    #[test]
    fn stale_tier_lap_rejected_by_seqno() {
        let mut img = Vec::new();
        img.extend_from_slice(&encode_tier_record(
            6,
            &TierOp::Intent(sample_tier_txn(TierKind::Replica)),
        ));
        img.extend_from_slice(&encode_tier_record(
            2,
            &TierOp::Commit(sample_tier_txn(TierKind::Replica)),
        ));
        let r = recover_tier(&img, 6);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(
            r.stop,
            RecoveryStop::SeqnoMismatch {
                at: 1,
                expected: 7,
                found: 2
            }
        );
    }

    fn sample_write(i: u64) -> WriteCommit {
        WriteCommit {
            file: 3,
            stream: i % 4,
            offset: i * 16,
            len: 16,
        }
    }

    #[test]
    fn write_records_round_trip() {
        let ops: Vec<WriteCommit> = (0..6).map(sample_write).collect();
        let mut img = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            img.extend_from_slice(&encode_write_record(i as u64, op));
        }
        let r = recover_writes(&img, 0);
        assert_eq!(r.ops, ops);
        assert_eq!(r.stop, RecoveryStop::CleanEnd);
    }

    #[test]
    fn torn_write_record_ends_the_prefix() {
        for persisted in [1usize, 14, 15, 46, 119, 127] {
            let mut img = Vec::new();
            img.extend_from_slice(&encode_write_record(0, &sample_write(0)));
            let torn = encode_write_record(1, &sample_write(1));
            img.extend_from_slice(&torn[..persisted]);
            let r = recover_writes(&img, 0);
            assert_eq!(r.ops, vec![sample_write(0)], "persisted={persisted}");
            assert_eq!(r.stop, RecoveryStop::TornTail { at: 1 });
        }
        // Nothing of the torn record reached the media: a clean end.
        let img = encode_write_record(0, &sample_write(0));
        assert_eq!(recover_writes(&img, 0).stop, RecoveryStop::CleanEnd);
    }

    #[test]
    fn write_scan_rejects_foreign_tags() {
        // The data-path stream cannot replay metadata or remap records, and
        // neither of those scans accepts a write-commit record.
        let meta = encode_record(0, &sample_ops()[0]);
        let r = recover_writes(&meta, 0);
        assert!(r.ops.is_empty());
        assert_eq!(r.stop, RecoveryStop::BadPayload { at: 0 });

        let w = encode_write_record(0, &sample_write(0));
        assert_eq!(recover(&w, 0).stop, RecoveryStop::BadPayload { at: 0 });
        assert_eq!(
            recover_remaps(&w, 0).stop,
            RecoveryStop::BadPayload { at: 0 }
        );
    }

    #[test]
    fn stale_write_lap_rejected_by_seqno() {
        let mut img = Vec::new();
        img.extend_from_slice(&encode_write_record(5, &sample_write(0)));
        img.extend_from_slice(&encode_write_record(2, &sample_write(1)));
        let r = recover_writes(&img, 5);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(
            r.stop,
            RecoveryStop::SeqnoMismatch {
                at: 1,
                expected: 6,
                found: 2
            }
        );
    }

    #[test]
    fn recovery_replays_to_consistent_mds() {
        let mut w = WalWriter::new();
        for op in sample_ops() {
            w.append(&op);
        }
        for mode in [DirMode::Normal, DirMode::Htree, DirMode::Embedded] {
            let r = recover(w.image(), 0);
            let mds = r.replay(mode);
            assert!(mds.check().is_empty(), "{mode}");
        }
    }
}

#[cfg(test)]
mod shard_wal_tests {
    use super::*;

    fn sample_records() -> Vec<ShardRecord> {
        vec![
            ShardRecord {
                gseq: 0,
                op: ShardOp::Ns(ShardNsOp::Mkdir {
                    dir: 0,
                    striped: true,
                    name: "big".into(),
                }),
            },
            ShardRecord {
                gseq: 1,
                op: ShardOp::Ns(ShardNsOp::Create {
                    dir: 0,
                    extents: 3,
                    name: "f0".into(),
                }),
            },
            ShardRecord {
                gseq: 2,
                op: ShardOp::Ns(ShardNsOp::Utime {
                    dir: 0,
                    name: "f0".into(),
                }),
            },
            ShardRecord {
                gseq: 3,
                op: ShardOp::XsIntent(XsTxn {
                    txn: 7,
                    src_dir: 0,
                    dst_dir: 1,
                    src_shard: 0,
                    dst_shard: 2,
                    src_head: 4,
                    dst_head: 9,
                    name: "f0".into(),
                    new_name: "g0".into(),
                }),
            },
            ShardRecord {
                gseq: 4,
                op: ShardOp::XsCas {
                    txn: 7,
                    dir: 0,
                    old: 4,
                    new: 5,
                },
            },
            ShardRecord {
                gseq: 5,
                op: ShardOp::XsCommit { txn: 7 },
            },
            ShardRecord {
                gseq: 6,
                op: ShardOp::Ns(ShardNsOp::Rename {
                    src: 1,
                    dst: 1,
                    name: "g0".into(),
                    new_name: "h0".into(),
                }),
            },
            ShardRecord {
                gseq: 7,
                op: ShardOp::Ns(ShardNsOp::Unlink {
                    dir: 1,
                    name: "h0".into(),
                }),
            },
        ]
    }

    #[test]
    fn shard_records_round_trip_every_kind() {
        let mut w = ShardWal::new();
        for rec in sample_records() {
            w.append(&rec);
        }
        let r = recover_shard(w.image(), 0);
        assert_eq!(r.stop, RecoveryStop::CleanEnd);
        assert_eq!(r.records, sample_records());
    }

    #[test]
    fn torn_shard_record_ends_the_prefix() {
        let recs = sample_records();
        for persisted in [0, 1, HEADER_BYTES, 64, WAL_RECORD_BYTES - 1] {
            let mut w = ShardWal::new();
            w.append(&recs[0]);
            w.append(&recs[3]);
            w.append_torn(&recs[5], persisted);
            let r = recover_shard(w.image(), 0);
            assert_eq!(r.records.len(), 2, "persisted={persisted}");
            assert!(
                matches!(
                    r.stop,
                    RecoveryStop::BadChecksum { at: 2 } | RecoveryStop::BadMagic { at: 2 }
                ),
                "persisted={persisted}: {:?}",
                r.stop
            );
        }
    }

    #[test]
    fn shard_scan_rejects_foreign_tags_and_vice_versa() {
        // A metadata-tag record inside a shard stream is a BadPayload stop.
        let mut img = Vec::new();
        img.extend_from_slice(&encode_shard_record(0, &sample_records()[0]));
        img.extend_from_slice(&encode_record(
            1,
            &LoggedOp::Mkdir {
                parent: crate::ids::ROOT_INO,
                name: "d".into(),
            },
        ));
        let r = recover_shard(&img, 0);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.stop, RecoveryStop::BadPayload { at: 1 });

        // And a shard record inside a metadata stream is equally rejected.
        let mut img = Vec::new();
        img.extend_from_slice(&encode_record(
            0,
            &LoggedOp::Mkdir {
                parent: crate::ids::ROOT_INO,
                name: "d".into(),
            },
        ));
        img.extend_from_slice(&encode_shard_record(1, &sample_records()[1]));
        let r = recover(&img, 0);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(r.stop, RecoveryStop::BadPayload { at: 1 });
    }

    #[test]
    fn stale_shard_lap_rejected_by_seqno() {
        let recs = sample_records();
        let mut img = Vec::new();
        img.extend_from_slice(&encode_shard_record(3, &recs[0]));
        img.extend_from_slice(&encode_shard_record(1, &recs[1]));
        let r = recover_shard(&img, 3);
        assert_eq!(r.records.len(), 1);
        assert_eq!(
            r.stop,
            RecoveryStop::SeqnoMismatch {
                at: 1,
                expected: 4,
                found: 1
            }
        );
    }
}
