//! Inode-number handling (§IV-B).
//!
//! Embedded directories allocate inodes dynamically inside directory
//! content, so the classic "inode number indexes the inode table"
//! translation is broken. The paper regains it by composing the inode
//! number from the parent directory's identification and the inode's offset
//! within the directory: "the normal file inode number is expressed by a
//! 64-bit number, and the directory identification and offset is sized at
//! 32-bit."

/// A 64-bit inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeNo(pub u64);

/// A 32-bit directory identification assigned by the global directory
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirId(pub u32);

/// The root directory's inode number. The root is its own well-known
/// object: its content location is stored in the superblock, not in any
/// parent directory.
pub const ROOT_INO: InodeNo = InodeNo(1);

/// High bit tagging composed (embedded-mode) inode numbers, so they can
/// never collide with the well-known [`ROOT_INO`]. This halves the
/// directory-identification space to 31 bits — the paper itself notes the
/// 64-bit design "limits the file count in a directory and total directory
/// count" and that widening the number solves it.
const COMPOSED_TAG: u64 = 1 << 63;

impl InodeNo {
    /// Compose an embedded-mode inode number from the parent directory's
    /// identification and the slot offset inside the directory content.
    pub fn compose(dir: DirId, offset: u32) -> Self {
        debug_assert!(dir.0 < (1 << 31), "directory identification overflow");
        InodeNo(COMPOSED_TAG | ((dir.0 as u64) << 32) | offset as u64)
    }

    /// Is this a composed (embedded-mode) inode number?
    pub fn is_composed(self) -> bool {
        self.0 & COMPOSED_TAG != 0
    }

    /// Parent directory identification portion.
    pub fn dir_id(self) -> DirId {
        DirId(((self.0 & !COMPOSED_TAG) >> 32) as u32)
    }

    /// Offset-in-directory portion.
    pub fn offset(self) -> u32 {
        self.0 as u32
    }
}

impl std::fmt::Display for InodeNo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// The 128-bit inode number of §IV-B's outlook: "shifting to a 128-bit
/// inode number with a 64-bit directory number and a 64-bit offset would
/// overcome any realistic limitations" (the 64-bit format caps both the
/// per-directory file count and the total directory count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WideInodeNo(pub u128);

impl WideInodeNo {
    /// The wide root inode.
    pub const ROOT: WideInodeNo = WideInodeNo(1);

    /// Compose from a 64-bit directory number and a 64-bit offset.
    pub fn compose(dir: u64, offset: u64) -> Self {
        debug_assert!(dir < (1 << 63), "directory number overflow");
        WideInodeNo((1u128 << 127) | ((dir as u128) << 64) | offset as u128)
    }

    pub fn dir_number(self) -> u64 {
        ((self.0 >> 64) as u64) & !(1 << 63)
    }

    pub fn offset(self) -> u64 {
        self.0 as u64
    }

    /// Widen a 64-bit composed number losslessly.
    pub fn from_narrow(ino: InodeNo) -> Self {
        if ino == ROOT_INO {
            Self::ROOT
        } else {
            Self::compose(ino.dir_id().0 as u64, ino.offset() as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_round_trips() {
        let ino = InodeNo::compose(DirId(7), 4242);
        assert_eq!(ino.dir_id(), DirId(7));
        assert_eq!(ino.offset(), 4242);
    }

    #[test]
    fn compose_is_injective_across_dirs() {
        let a = InodeNo::compose(DirId(1), 2);
        let b = InodeNo::compose(DirId(2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn max_values_fit() {
        let max_dir = DirId((1 << 31) - 1);
        let ino = InodeNo::compose(max_dir, u32::MAX);
        assert_eq!(ino.dir_id(), max_dir);
        assert_eq!(ino.offset(), u32::MAX);
    }

    #[test]
    fn composed_never_collides_with_root() {
        for dir in [0u32, 1, 7] {
            for off in [0u32, 1, 2] {
                assert_ne!(InodeNo::compose(DirId(dir), off), ROOT_INO);
            }
        }
        assert!(InodeNo::compose(DirId(0), 1).is_composed());
        assert!(!ROOT_INO.is_composed());
    }

    use crate::ids::ROOT_INO;

    #[test]
    fn wide_compose_round_trips() {
        let w = WideInodeNo::compose(0xDEAD_BEEF_0000, 0xFFFF_FFFF_FFFF);
        assert_eq!(w.dir_number(), 0xDEAD_BEEF_0000);
        assert_eq!(w.offset(), 0xFFFF_FFFF_FFFF);
    }

    #[test]
    fn wide_widens_narrow_numbers_losslessly() {
        let narrow = InodeNo::compose(DirId(42), 7);
        let wide = WideInodeNo::from_narrow(narrow);
        assert_eq!(wide.dir_number(), 42);
        assert_eq!(wide.offset(), 7);
        assert_eq!(WideInodeNo::from_narrow(ROOT_INO), WideInodeNo::ROOT);
    }

    #[test]
    fn wide_exceeds_narrow_capacity() {
        // A directory number and offset past the 32-bit limits still fit.
        let w = WideInodeNo::compose(u32::MAX as u64 + 10, u32::MAX as u64 + 10);
        assert_eq!(w.dir_number(), u32::MAX as u64 + 10);
        assert_eq!(w.offset(), u32::MAX as u64 + 10);
    }
}
