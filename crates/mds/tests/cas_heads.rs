//! Property tests for the CAS op-head protocol: N real threads racing
//! renames over shared directories. The properties the protocol promises —
//! heads strictly monotone, every operation exactly-once, retries bounded —
//! are asserted over seeded random schedules so a failure reproduces with
//! one number.

use mif_mds::{OpHeadTable, ShardedConfig, ShardedMds};
use mif_rng::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Raw table property: `threads` threads hammer one head with CAS
/// advances. Every advance is exactly-once (the sum of wins equals the
/// final head) and the head never moves backwards.
#[test]
fn raced_head_advances_are_exactly_once() {
    for &(threads, per_thread) in &[(2usize, 400usize), (4, 200), (8, 100)] {
        let table = OpHeadTable::new();
        let wins = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let mut advanced = 0;
                    while advanced < per_thread {
                        let seen = table.load(7);
                        if table.try_advance(7, seen).is_ok() {
                            advanced += 1;
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            table.load(7),
            wins.load(Ordering::Relaxed),
            "every successful CAS moved the head by exactly one"
        );
        assert_eq!(table.load(7), (threads * per_thread) as u64);
    }
}

/// Monotonicity under interference: a reader thread samples the head while
/// writers advance it; no sample may ever be smaller than a previous one.
#[test]
fn head_is_strictly_monotone_under_load() {
    let table = OpHeadTable::new();
    let stop = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..500 {
                    let seen = table.load(3);
                    let _ = table.try_advance(3, seen);
                }
            });
        }
        s.spawn(|| {
            let mut last = 0;
            while stop.load(Ordering::Acquire) == 0 {
                let now = table.load(3);
                assert!(now >= last, "head regressed: {now} < {last}");
                last = now;
            }
        });
        // Writers run to completion, then release the reader.
        // (Scoped threads join at scope end; flag it before that.)
        for _ in 0..2000 {
            let seen = table.load(3);
            let _ = table.try_advance(3, seen);
        }
        stop.store(1, Ordering::Release);
    });
}

/// `force_at_least` (the recovery path) composes with live CAS traffic:
/// it can only raise, and a stale force below the live head is a no-op.
#[test]
fn force_at_least_never_lowers() {
    let table = OpHeadTable::new();
    for _ in 0..64 {
        let seen = table.load(1);
        table.try_advance(1, seen).unwrap();
    }
    assert_eq!(table.load(1), 64);
    table.force_at_least(1, 10); // stale — recovery saw an old journal
    assert_eq!(table.load(1), 64);
    table.force_at_least(1, 99);
    assert_eq!(table.load(1), 99);
}

/// Build a cluster with striped directories sized so cross-shard routes
/// exist between `src` and `dst` for the storm entries.
fn storm_cluster(
    shards: usize,
    entries_per_thread: usize,
    threads: usize,
) -> (ShardedMds, u32, u32) {
    let mut m = ShardedMds::new(ShardedConfig::with_shards(shards));
    let src = m.mkdir_striped("src");
    let dst = m.mkdir_striped("dst");
    for t in 0..threads {
        for i in 0..entries_per_thread {
            m.create(src, &format!("t{t}_{i}"), 1);
        }
    }
    (m, src, dst)
}

/// The full protocol under racing threads: every planned op commits
/// exactly once, per-directory heads advance monotonically to exactly the
/// number of journaled CAS advances, and no single op needed more than
/// the configured retry budget.
#[test]
fn racing_renames_commit_exactly_once_with_bounded_retries() {
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(0xCA5_0000 + seed);
        let threads = 2 + (rng.gen_range(0u32..3) as usize); // 2..=4
        let per_thread = 24;
        let (mut m, src, dst) = storm_cluster(4, per_thread, threads);
        // Only cross-shard routes belong in a CAS storm (the fast path
        // handles the rest); filter by the pure routing function.
        let mut planned: Vec<(usize, usize)> = Vec::new();
        let plan: Vec<Vec<(u32, String, u32, String)>> = (0..threads)
            .map(|t| {
                (0..per_thread)
                    .filter(|&i| {
                        let xs = m.entry_shard(src, &format!("t{t}_{i}"))
                            != m.entry_shard(dst, &format!("m{t}_{i}"));
                        if xs {
                            planned.push((t, i));
                        }
                        xs
                    })
                    .map(|i| (src, format!("t{t}_{i}"), dst, format!("m{t}_{i}")))
                    .collect()
            })
            .collect();
        assert!(
            planned.len() >= threads * per_thread / 2,
            "seed {seed}: too few cross-shard routes to exercise the protocol"
        );
        let heads_before: Vec<u64> = (0..4).map(|s| m.head(s, src) + m.head(s, dst)).collect();
        let report = m.rename_storm(&plan);

        // Exactly-once: every planned op committed; no entry exists
        // twice, none lost, the unplanned ones untouched.
        assert_eq!(report.committed, planned.len() as u64, "seed {seed}");
        for t in 0..threads {
            for i in 0..per_thread {
                let there = m.stat(dst, &format!("m{t}_{i}"));
                let still = m.stat(src, &format!("t{t}_{i}"));
                if planned.contains(&(t, i)) {
                    assert!(there, "seed {seed}: t{t}_{i} lost");
                    assert!(!still, "seed {seed}: t{t}_{i} still at source");
                } else {
                    assert!(still && !there, "seed {seed}: unplanned t{t}_{i} moved");
                }
            }
        }

        // Bounded retries: no op exceeded the configured CAS budget.
        assert!(
            report.max_retries_single_op < m.config().max_cas_retries,
            "seed {seed}: worst op used {} retries",
            report.max_retries_single_op
        );

        // Heads moved forward only.
        let heads_after: Vec<u64> = (0..4).map(|s| m.head(s, src) + m.head(s, dst)).collect();
        for (s, (b, a)) in heads_before.iter().zip(&heads_after).enumerate() {
            assert!(a >= b, "seed {seed}: shard {s} heads regressed");
        }

        // The cluster is internally consistent after the storm.
        assert!(
            m.shard_findings().is_empty(),
            "seed {seed}: {:?}",
            m.shard_findings()
        );
    }
}

/// Create storms on one striped directory: the §IV-C primary hash index
/// stays per-shard-consistent under concurrent create traffic.
#[test]
fn create_storm_keeps_primary_index_consistent() {
    for &threads in &[2usize, 4, 8] {
        let mut m = ShardedMds::new(ShardedConfig::with_shards(4));
        let big = m.mkdir_striped("big");
        let report = m.create_storm(big, threads, 64);
        assert_eq!(report.committed, (threads * 64) as u64);
        assert_eq!(m.entry_count(big), threads * 64);
        // Index vs stores: every entry indexed exactly where it lives.
        assert!(m.shard_findings().is_empty(), "{:?}", m.shard_findings());
        // Heads advanced exactly once per create, summed over the shards
        // the entries striped onto.
        let advanced: u64 = (0..4).map(|s| m.head(s, big)).sum();
        assert_eq!(advanced, (threads * 64) as u64);
    }
}

/// Contention telemetry is truthful: a storm over one hot directory pair
/// records CAS retries when threads actually raced, and the recovered
/// image replays to the identical namespace (the journaled heads carry
/// the whole story).
#[test]
fn storm_journal_recovers_to_identical_namespace() {
    let threads = 4;
    let (mut m, src, dst) = storm_cluster(4, 10, threads);
    let plan: Vec<Vec<(u32, String, u32, String)>> = (0..threads)
        .map(|t| {
            (0..10)
                .filter(|&i| {
                    m.entry_shard(src, &format!("t{t}_{i}"))
                        != m.entry_shard(dst, &format!("m{t}_{i}"))
                })
                .map(|i| (src, format!("t{t}_{i}"), dst, format!("m{t}_{i}")))
                .collect()
        })
        .collect();
    m.rename_storm(&plan);
    let recovered = ShardedMds::recover(&m.wal_images(), *m.config());
    assert_eq!(
        recovered.snapshot(),
        m.snapshot(),
        "replayed namespace must match the live one byte-for-byte"
    );
    assert!(recovered.shard_findings().is_empty());
}
