//! File-system configuration.

use mif_alloc::{OnDemandConfig, PolicyKind};
use mif_mds::{DirMode, MdsConfig};
use mif_simdisk::{DiskGeometry, SchedulerConfig};

/// Configuration of a [`crate::FileSystem`] instance.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Number of IO servers (= data disks; the paper stripes over 5 for the
    /// micro-benchmarks and 8 for the macro-benchmarks).
    pub osts: u32,
    /// Empty expansion bays beyond `osts`: slots whose disks start
    /// `Absent` and join the array live via `add_ost` (online expansion).
    /// Every physical structure (disk, allocator, shard) exists from
    /// construction; an absent bay is simply invisible to placement until
    /// populated.
    pub spare_osts: u32,
    /// Stripe unit in 4 KiB blocks (default 256 = 1 MiB, Lustre's default).
    pub stripe_blocks: u64,
    /// Block-allocation policy of the IO servers.
    pub policy: PolicyKind,
    /// Tuning for the on-demand policy (ignored by the others).
    pub ondemand: OnDemandConfig,
    /// Reservation-window size in blocks for the reservation policy — the
    /// "allocation size" axis of Fig. 6(b).
    pub reservation_window_blocks: u64,
    /// Parallel allocation groups per OST disk.
    pub groups_per_ost: usize,
    /// Data-disk geometry.
    pub geometry: DiskGeometry,
    /// Data-disk scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// Per-data-disk cache size in blocks (kept small: the paper's phase-2
    /// reads are far larger than server memory, so reads hit the platter).
    pub data_cache_blocks: usize,
    /// Write-back threshold in blocks (across the file system): dirty data
    /// flushes to the disks in large sorted sweeps once this much has
    /// accumulated (page-cache writeback analogue).
    pub writeback_limit_blocks: u64,
    /// Metadata server configuration.
    pub mds: MdsConfig,
    /// CPU cost charged to the MDS per extent handled (merge + index), in
    /// nanoseconds — the Table I CPU-utilization proxy.
    pub mds_cpu_ns_per_extent: u64,
    /// Group-commit the concurrent front-end's data-path WAL and take the
    /// lock-free hot paths (powered-off mirror, window claims). `false`
    /// restores the PR-5 behaviour — one journal flush per record and a
    /// per-op disk-lock sweep — as the measurable contention baseline for
    /// `BENCH 6`. The serial engine ignores this flag.
    pub group_commit: bool,
    /// Staging-slab capacity of the group-commit WAL, in records. Small
    /// slabs exercise backpressure (appenders park and drain); the default
    /// comfortably covers a sync interval of writes from many threads.
    pub wal_slab_records: usize,
    /// Metadata-namespace shards the concurrent front-end routes over. With
    /// `1` (the default) every name hashes into one flat stripe table; with
    /// more, the stripe table is partitioned into per-shard regions via
    /// [`mif_mds::ShardMap`] — the same stable dir/name → shard placement
    /// the sharded MDS uses — so namespace operations on different shards
    /// never contend on a stripe, and a cross-shard rename provably orders
    /// its two stripe guards by ascending index (see
    /// `mif_alloc::lockorder::acquire_indexed`).
    pub mds_shards: usize,
}

impl Default for FsConfig {
    fn default() -> Self {
        let scheduler = SchedulerConfig {
            // Per-request RPC + server-queue cost on the data path (Lustre
            // 1.x-era magnitude); the MDS path models its costs explicitly.
            per_request_ns: 150_000,
            ..Default::default()
        };
        Self {
            osts: 5,
            spare_osts: 0,
            stripe_blocks: 256,
            policy: PolicyKind::Reservation,
            ondemand: OnDemandConfig::default(),
            reservation_window_blocks: 512,
            groups_per_ost: 16,
            geometry: DiskGeometry::default(),
            scheduler,
            data_cache_blocks: 65536,
            writeback_limit_blocks: 16384,
            mds: MdsConfig::default(),
            mds_cpu_ns_per_extent: 50_000,
            group_commit: true,
            wal_slab_records: 1024,
            mds_shards: 1,
        }
    }
}

impl FsConfig {
    /// Total disk bays: initially-active OSTs plus empty expansion bays.
    pub fn total_osts(&self) -> usize {
        (self.osts + self.spare_osts) as usize
    }

    /// Convenience: a config with the given policy and OST count.
    pub fn with_policy(policy: PolicyKind, osts: u32) -> Self {
        Self {
            policy,
            osts,
            ..Default::default()
        }
    }

    /// Convenience: also choose the MDS directory mode.
    pub fn with_modes(policy: PolicyKind, osts: u32, dir_mode: DirMode) -> Self {
        Self {
            policy,
            osts,
            mds: MdsConfig::with_mode(dir_mode),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_micro_setup() {
        let c = FsConfig::default();
        assert_eq!(c.osts, 5);
        assert_eq!(c.policy, PolicyKind::Reservation);
    }

    #[test]
    fn with_modes_sets_dir_mode() {
        use mif_mds::DirMode;
        let c = FsConfig::with_modes(PolicyKind::OnDemand, 4, DirMode::Embedded);
        assert_eq!(c.mds.mode, DirMode::Embedded);
        assert_eq!(c.policy, PolicyKind::OnDemand);
    }

    #[test]
    fn data_path_carries_rpc_overhead() {
        assert!(FsConfig::default().scheduler.per_request_ns > 0);
    }

    #[test]
    fn with_policy_overrides() {
        let c = FsConfig::with_policy(PolicyKind::OnDemand, 8);
        assert_eq!(c.osts, 8);
        assert_eq!(c.policy, PolicyKind::OnDemand);
    }
}
