//! The file-system facade.
//!
//! Concurrency is modelled by *rounds*: the workload driver opens a round,
//! issues the operations of all concurrent streams in their arrival order
//! (allocation decisions happen immediately, in that order — exactly the
//! mechanism behind Figure 1(a)), then closes the round, which submits each
//! IO server's accumulated requests as one scheduled batch and advances
//! simulated time by the slowest server's service time.

use crate::config::FsConfig;
use crate::metrics::FsMetrics;
use crate::striping::Striping;
use crate::tier::TierMap;
use mif_alloc::{make_policy, AllocPolicy, FileId, GroupedAllocator, StreamId};
use mif_extent::{Extent, ExtentTree};
use mif_mds::{InodeNo, Mds, ROOT_INO};
use mif_simdisk::{
    BlockRequest, DiskArray, DiskHealth, DiskStats, FaultPlan, FaultStats, IoFault, Nanos,
};
use std::collections::HashMap;

pub(crate) struct Ost {
    pub(crate) alloc: GroupedAllocator,
    pub(crate) policy: Box<dyn AllocPolicy>,
}

pub(crate) struct FileState {
    pub(crate) name: String,
    pub(crate) ino: InodeNo,
    /// One extent tree per stripe *column* (column-local logical space).
    /// A file's width (column count) is fixed at create time to the
    /// then-active OST count, so files created after an expansion stripe
    /// wider than older ones.
    pub(crate) trees: Vec<ExtentTree>,
    /// Column → physical OST. Identity with the active set at create;
    /// a drain relocates a whole column to another OST and repoints its
    /// entry here. All physical targeting (allocator, disk, queues) goes
    /// through this map; all logical bookkeeping (striping math, tier
    /// source spans) stays in column space.
    pub(crate) ost_map: Vec<u32>,
    pub(crate) size_blocks: u64,
    /// Starting-column rotation for this file (files begin on different
    /// servers so concurrent per-process files spread the load).
    pub(crate) ost_shift: u32,
    /// Live handle count: `create`/`open`/`open_by_ino` increment, `close`
    /// decrements. Policy state (preallocation windows) is finalized only
    /// when the *last* handle closes, so a file shared by several openers
    /// keeps its windows until everyone is done.
    pub(crate) open_handles: u32,
}

impl FileState {
    /// The striping function this file was created under (width = its
    /// column count).
    pub(crate) fn striping(&self, stripe_blocks: u64) -> Striping {
        Striping::new(self.trees.len() as u32, stripe_blocks)
    }
}

/// Cumulative disk-population lifecycle counters: rebuilds, drains,
/// expansions and scrub work, surfaced through `FsStats` and the fleet
/// benches. Maintained by the engines (rebuild), `mif-defrag`'s drain
/// driver and `mif-scrub`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// OST rebuilds brought to completion.
    pub rebuilds_completed: u64,
    /// Blocks reconstructed from redundancy during rebuilds.
    pub rebuilt_blocks: u64,
    /// Drains brought to completion (bay emptied to `Absent`).
    pub drains_completed: u64,
    /// File columns relocated off draining OSTs.
    pub drained_columns: u64,
    /// Blocks moved by drain relocations.
    pub drained_blocks: u64,
    /// Bays populated live (`add_ost`).
    pub osts_added: u64,
    /// Completed scrub passes over the whole population.
    pub scrub_passes: u64,
    /// Blocks checksum-verified by the scrubber.
    pub scrub_scanned_blocks: u64,
    /// Damaged blocks the scrubber found.
    pub scrub_corruptions_found: u64,
    /// Damaged blocks repaired from replicas/parity/primaries.
    pub scrub_repaired: u64,
    /// Damaged blocks with no redundant source — filed as findings.
    pub scrub_findings: u64,
}

/// The engine's owned state, taken apart so [`crate::ConcurrentFs`] can
/// shard it behind per-OST and per-file locks and reassemble on quiesce.
pub(crate) struct EngineParts {
    pub(crate) config: FsConfig,
    pub(crate) array: DiskArray,
    pub(crate) osts: Vec<Ost>,
    pub(crate) health: Vec<DiskHealth>,
    pub(crate) lifecycle: LifecycleStats,
    pub(crate) mds: Mds,
    pub(crate) files: HashMap<FileId, FileState>,
    pub(crate) next_file: u64,
    pub(crate) tier: TierMap,
    pub(crate) data_elapsed_ns: Nanos,
    pub(crate) mds_cpu_ns: Nanos,
}

/// Handle returned by [`FileSystem::create`] / [`FileSystem::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenFile(pub FileId);

/// A complete parallel file system instance.
pub struct FileSystem {
    pub config: FsConfig,
    array: DiskArray,
    osts: Vec<Ost>,
    /// Per-bay population state. Placement consults it; IO routing and
    /// maintenance (defrag, tier, fsck, scrub) route around non-serving
    /// bays. Transitions go through [`FileSystem::set_ost_health`], which
    /// enforces the [`DiskHealth::can_transition`] machine.
    health: Vec<DiskHealth>,
    lifecycle: LifecycleStats,
    mds: Mds,
    files: HashMap<FileId, FileState>,
    next_file: u64,
    pending: Vec<Vec<BlockRequest>>,
    /// Write-back cache: dirty data accumulates here and flushes to the
    /// disks in large sorted sweeps, the way page-cache writeback does —
    /// synchronous per-round writes would charge the allocator's placement
    /// decisions with seeks no real buffered write path pays.
    writeback: Vec<Vec<BlockRequest>>,
    writeback_blocks: u64,
    /// Delayed allocation (§II-B): extending writes buffered as unmapped
    /// logical ranges, allocated in one coalesced request per run at flush
    /// time. An early sync forces allocation of whatever little has
    /// accumulated — the fragility the paper contrasts on-demand with.
    delayed_pending: HashMap<(FileId, usize), Vec<(u64, u64)>>,
    round_open: bool,
    /// Redundancy artifacts the tier layer derived from file data
    /// (replicas of hot spans, parity of cold stripe groups).
    tier: TierMap,
    data_elapsed_ns: Nanos,
    mds_cpu_ns: Nanos,
}

impl FileSystem {
    pub fn new(config: FsConfig) -> Self {
        let osts_n = config.total_osts();
        let array = DiskArray::with_config(
            osts_n,
            config.geometry.clone(),
            config.scheduler.clone(),
            config.data_cache_blocks,
        );
        let osts = (0..osts_n)
            .map(|_| Ost {
                alloc: GroupedAllocator::new(config.geometry.blocks, config.groups_per_ost),
                policy: match config.policy {
                    mif_alloc::PolicyKind::OnDemand => {
                        Box::new(mif_alloc::OnDemandPolicy::new(config.ondemand.clone()))
                            as Box<dyn AllocPolicy>
                    }
                    mif_alloc::PolicyKind::Reservation => Box::new(
                        mif_alloc::ReservationPolicy::new(config.reservation_window_blocks),
                    ),
                    k => make_policy(k),
                },
            })
            .collect();
        let mds = Mds::new(config.mds.clone());
        let pending = vec![Vec::new(); osts_n];
        let writeback = vec![Vec::new(); osts_n];
        let health = (0..osts_n)
            .map(|i| {
                if i < config.osts as usize {
                    DiskHealth::Healthy
                } else {
                    DiskHealth::Absent
                }
            })
            .collect();
        Self {
            writeback,
            writeback_blocks: 0,
            delayed_pending: HashMap::new(),
            config,
            array,
            osts,
            health,
            lifecycle: LifecycleStats::default(),
            mds,
            files: HashMap::new(),
            next_file: 1,
            pending,
            round_open: false,
            tier: TierMap::new(),
            data_elapsed_ns: 0,
            mds_cpu_ns: 0,
        }
    }

    /// Take the quiesced engine apart for the concurrent front-end. The
    /// caller must have flushed everything first: no open round, no pending
    /// or buffered IO, no delayed ranges — sharding a system with in-flight
    /// state would silently drop it.
    pub(crate) fn into_parts(mut self) -> EngineParts {
        assert!(!self.round_open, "into_parts with an open round");
        self.sync_data();
        assert!(self.pending.iter().all(|b| b.is_empty()));
        assert!(self.writeback.iter().all(|b| b.is_empty()));
        assert!(self.delayed_pending.is_empty());
        EngineParts {
            config: self.config,
            array: self.array,
            osts: self.osts,
            health: self.health,
            lifecycle: self.lifecycle,
            mds: self.mds,
            files: self.files,
            next_file: self.next_file,
            tier: self.tier,
            data_elapsed_ns: self.data_elapsed_ns,
            mds_cpu_ns: self.mds_cpu_ns,
        }
    }

    /// Rebuild an engine from parts the concurrent front-end sharded.
    pub(crate) fn from_parts(parts: EngineParts) -> Self {
        let osts_n = parts.config.total_osts();
        Self {
            array: parts.array,
            osts: parts.osts,
            health: parts.health,
            lifecycle: parts.lifecycle,
            mds: parts.mds,
            files: parts.files,
            next_file: parts.next_file,
            pending: vec![Vec::new(); osts_n],
            writeback: vec![Vec::new(); osts_n],
            writeback_blocks: 0,
            delayed_pending: HashMap::new(),
            round_open: false,
            tier: parts.tier,
            data_elapsed_ns: parts.data_elapsed_ns,
            mds_cpu_ns: parts.mds_cpu_ns,
            config: parts.config,
        }
    }

    // ----- lifecycle ------------------------------------------------------

    /// Create a file under the root directory. `size_hint_blocks` is the
    /// application's declared final size — only the static (`fallocate`)
    /// policy uses it.
    pub fn create(&mut self, name: &str, size_hint_blocks: Option<u64>) -> OpenFile {
        let id = FileId(self.next_file);
        self.next_file += 1;
        let ino = self.mds.create(ROOT_INO, name, 0);
        // New layouts land only on bays accepting placements: a draining,
        // failed or absent OST gets no new columns. The file's width is
        // fixed here — files created after an expansion stripe wider.
        let ost_map = self.active_osts();
        assert!(
            !ost_map.is_empty(),
            "create with no OST accepting placements"
        );
        let width = ost_map.len();
        let per_ost_hint = size_hint_blocks.map(|s| s.div_ceil(width as u64));
        for &phys in &ost_map {
            let ost = &mut self.osts[phys as usize];
            ost.policy.create(&ost.alloc, id, per_ost_hint);
        }
        let mut trees: Vec<ExtentTree> = (0..width).map(|_| ExtentTree::new()).collect();
        // fallocate semantics: static preallocation maps the whole hinted
        // range up front (unwritten extents), so the blocks are owned by
        // the file and freed with it at unlink.
        if self.config.policy == mif_alloc::PolicyKind::Static {
            if let Some(hint) = per_ost_hint {
                let stream = StreamId::new(u32::MAX, u32::MAX);
                for (&phys, tree) in ost_map.iter().zip(&mut trees) {
                    let ost = &mut self.osts[phys as usize];
                    let mut logical = 0;
                    for (phys, l) in ost.policy.extend(&ost.alloc, id, stream, 0, hint) {
                        tree.insert(Extent::new(logical, phys, l));
                        logical += l;
                    }
                }
            }
        }
        self.files.insert(
            id,
            FileState {
                name: name.to_string(),
                ino,
                trees,
                ost_map,
                size_blocks: 0,
                ost_shift: (id.0 % width as u64) as u32,
                open_handles: 1,
            },
        );
        OpenFile(id)
    }

    /// Open by name. Models the aggregated open-getlayout of §II-A.2: the
    /// layout arrives with the open in a single MDS operation.
    pub fn open(&mut self, name: &str) -> Option<OpenFile> {
        let id = self
            .files
            .iter()
            .find(|(_, f)| f.name == name)
            .map(|(&id, _)| id)?;
        self.mds.getlayout(ROOT_INO, name);
        self.files.get_mut(&id).expect("just found").open_handles += 1;
        Some(OpenFile(id))
    }

    /// Open by inode number — the path management jobs take (§IV-B:
    /// "Some file management jobs... rely on the constancy of the file ID").
    /// In embedded mode the number routes through the global directory
    /// table and the rename correlation, so pre-rename IDs still resolve.
    pub fn open_by_ino(&mut self, ino: InodeNo) -> Option<OpenFile> {
        let current = self.mds.resolve_inode(ino)?;
        let id = self
            .files
            .iter()
            .find(|(_, f)| f.ino == current)
            .map(|(&id, _)| id)?;
        self.files.get_mut(&id).expect("just found").open_handles += 1;
        Some(OpenFile(id))
    }

    /// Close one handle. When the *last* handle closes, unconsumed
    /// preallocations (reservation/on-demand windows) are released on every
    /// OST — an idle closed file must not pin reserved-but-unwritten blocks
    /// out of the free pool (and the defrag scheduler treats it as
    /// relocatable from then on). Closing with other handles still open
    /// only drops the count.
    pub fn close(&mut self, file: OpenFile) {
        let Some(state) = self.files.get_mut(&file.0) else {
            return;
        };
        state.open_handles = state.open_handles.saturating_sub(1);
        if state.open_handles == 0 {
            for ost in &mut self.osts {
                ost.policy.finalize(&ost.alloc, file.0);
            }
        }
    }

    /// Live handles on `file` (0 after the last close or for unknown ids).
    pub fn open_handle_count(&self, file: OpenFile) -> u32 {
        self.files.get(&file.0).map(|f| f.open_handles).unwrap_or(0)
    }

    /// Does any OST's policy still hold a live preallocation window for
    /// `file`? The defrag scheduler skips such files — relocating them
    /// would race the window's future allocations.
    pub fn has_live_preallocation(&self, file: OpenFile) -> bool {
        self.osts.iter().any(|o| o.policy.has_reservation(file.0))
    }

    /// Truncate the file to `new_size_blocks`, freeing the tail's blocks.
    pub fn truncate(&mut self, file: OpenFile, new_size_blocks: u64) {
        self.sync_data();
        let Some(state) = self.files.get(&file.0) else {
            return;
        };
        let old_size = state.size_blocks;
        if new_size_blocks >= old_size {
            return;
        }
        let shift = state.ost_shift;
        let striping = state.striping(self.config.stripe_blocks);
        for (col, local, run, _) in
            striping.split(new_size_blocks, old_size - new_size_blocks, shift)
        {
            let col = col as usize;
            let state = self.files.get_mut(&file.0).expect("file exists");
            let ost_idx = state.ost_map[col] as usize;
            for (phys, len) in state.trees[col].remove(local, run) {
                self.osts[ost_idx].alloc.free(phys, len);
                self.array.disk_mut(ost_idx).invalidate(phys, len);
            }
        }
        let state = self.files.get_mut(&file.0).expect("file exists");
        state.size_blocks = new_size_blocks;
        self.mds.utime(ROOT_INO, &state.name.clone());
        // Content bounds changed wholesale: every derived artifact of the
        // file is stale (lazy teardown frees the runs later).
        self.tier.invalidate_file(file.0 .0);
    }

    /// Rename `file` to `new_name` within the root directory. Returns the
    /// file's (possibly new) inode number — embedded mode re-composes it
    /// from the destination slot, with the old number still resolving
    /// through the rename correlation until [`end_management`] (§IV-B).
    /// `None` if the file is unknown or the MDS refused the move.
    ///
    /// [`end_management`]: FileSystem::end_management
    pub fn rename(&mut self, file: OpenFile, new_name: &str) -> Option<InodeNo> {
        let state = self.files.get(&file.0)?;
        if state.name == new_name {
            return Some(state.ino);
        }
        let old = state.name.clone();
        let ino = self.mds.rename(ROOT_INO, &old, ROOT_INO, new_name)?;
        let state = self.files.get_mut(&file.0).expect("present above");
        state.name = new_name.to_string();
        state.ino = ino;
        Some(ino)
    }

    /// End of the management routines holding pre-rename file IDs: drops
    /// the MDS rename correlations (see [`mif_mds::Mds::end_management`]).
    pub fn end_management(&mut self) {
        self.mds.end_management();
    }

    /// Delete: free all blocks and remove the MDS entry. Releases policy
    /// state unconditionally — an unlinked file has no future writes, so
    /// remaining open handles cannot keep its windows alive.
    pub fn unlink(&mut self, file: OpenFile) {
        self.sync_data();
        for ost in &mut self.osts {
            ost.policy.finalize(&ost.alloc, file.0);
        }
        let Some(state) = self.files.remove(&file.0) else {
            return;
        };
        for (col, mut tree) in state.trees.into_iter().enumerate() {
            let i = state.ost_map[col] as usize;
            for (phys, len) in tree.clear() {
                self.osts[i].alloc.free(phys, len);
                self.array.disk_mut(i).invalidate(phys, len);
            }
        }
        // Derived redundancy dies with the primary: free every replica and
        // parity run the tier layer holds for this file, then forget them.
        for run in self.tier.runs_of_file(file.0 .0) {
            let ost = run.ost as usize;
            self.osts[ost].alloc.free(run.phys, run.len);
            self.array.disk_mut(ost).invalidate(run.phys, run.len);
        }
        self.tier.drop_file(file.0 .0);
        self.mds.unlink(ROOT_INO, &state.name);
    }

    // ----- rounds ----------------------------------------------------------

    /// Open a submission round. Operations issued until [`Self::end_round`]
    /// arrive "concurrently"; their allocations happen in call order.
    pub fn begin_round(&mut self) {
        assert!(!self.round_open, "round already open");
        self.round_open = true;
    }

    /// Submit the round to the IO servers; returns its elapsed time (the
    /// slowest server gates the round). Write-back data flushes when the
    /// dirty threshold is exceeded.
    pub fn end_round(&mut self) -> Nanos {
        self.try_end_round()
            .unwrap_or_else(|(ost, f)| panic!("unhandled fault on OST {ost}: {f}"))
    }

    /// Fallible [`FileSystem::end_round`]: an injected fault on any IO
    /// server surfaces as `Err((ost index, fault))` instead of panicking.
    /// The other servers' batches have been serviced — the fault kills one
    /// server's batch tail, not the round — and the round is closed either
    /// way. Elapsed-time accounting on the fault path is best-effort (the
    /// surviving servers' time is still charged).
    pub fn try_end_round(&mut self) -> Result<Nanos, (usize, IoFault)> {
        assert!(self.round_open, "no open round");
        self.round_open = false;
        let n = self.total_osts();
        let batches = std::mem::replace(&mut self.pending, vec![Vec::new(); n]);
        let mut t = self.array.try_submit_round(batches)?;
        if self.writeback_blocks >= self.config.writeback_limit_blocks {
            t += self.try_flush_writeback()?;
        }
        self.data_elapsed_ns += t;
        Ok(t)
    }

    /// Flush the write-back cache: one large sorted sweep per IO server.
    /// Returns the elapsed time of the flush (also added to the data
    /// clock by the callers that run outside a round).
    ///
    /// Under delayed allocation this is the moment allocation happens:
    /// each file's buffered ranges are sorted, coalesced into maximal runs
    /// and allocated with one request per run — "the opportunity to
    /// combine many block allocation requests into a single request"
    /// (§II-B). Frequent syncs shrink the runs and the benefit.
    pub fn flush_writeback(&mut self) -> Nanos {
        self.try_flush_writeback()
            .unwrap_or_else(|(ost, f)| panic!("unhandled fault on OST {ost}: {f}"))
    }

    /// Fallible [`FileSystem::flush_writeback`]. On a fault, the faulted
    /// server's unserviced tail is lost (as on a real crash) — the logical
    /// mapping survives in memory, so a recovery pass can rewrite it.
    pub fn try_flush_writeback(&mut self) -> Result<Nanos, (usize, IoFault)> {
        self.allocate_delayed();
        if self.writeback_blocks == 0 {
            return Ok(0);
        }
        self.writeback_blocks = 0;
        let n = self.total_osts();
        let batches = std::mem::replace(&mut self.writeback, vec![Vec::new(); n]);
        self.array.try_submit_round(batches)
    }

    /// Allocate everything the delayed-allocation path has buffered.
    fn allocate_delayed(&mut self) {
        let pending = std::mem::take(&mut self.delayed_pending);
        let stream = StreamId::new(u32::MAX, 0); // allocation is flush-driven
        for ((file_id, col), mut ranges) in pending {
            ranges.sort_unstable();
            // Coalesce adjacent/overlapping logical ranges into runs.
            let mut runs: Vec<(u64, u64)> = Vec::new();
            for (start, len) in ranges {
                match runs.last_mut() {
                    Some((s, l)) if *s + *l >= start => {
                        let end = (*s + *l).max(start + len);
                        *l = end - *s;
                    }
                    _ => runs.push((start, len)),
                }
            }
            let state = self.files.get_mut(&file_id).expect("file exists");
            let ost_idx = state.ost_map[col] as usize;
            for (start, len) in runs {
                // A range may have been mapped meanwhile (overwrite after
                // buffering); allocate only what is still a hole.
                for (gap_start, gap_len) in state.trees[col].gaps(start, len) {
                    let ost = &mut self.osts[ost_idx];
                    let allocated = ost
                        .policy
                        .extend(&ost.alloc, file_id, stream, gap_start, gap_len);
                    let before = state.trees[col].extent_count();
                    let mut logical = gap_start;
                    for (phys, l) in allocated {
                        state.trees[col].insert(Extent::new(logical, phys, l));
                        self.writeback[ost_idx].push(BlockRequest::write(phys, l));
                        logical += l;
                    }
                    let added = state.trees[col].extent_count().saturating_sub(before) as u64;
                    self.mds_cpu_ns += added * self.config.mds_cpu_ns_per_extent;
                }
            }
        }
    }

    /// Flush dirty data and charge the time (fsync analogue).
    pub fn sync_data(&mut self) {
        let t = self.flush_writeback();
        self.data_elapsed_ns += t;
    }

    /// Fallible [`FileSystem::sync_data`].
    pub fn try_sync_data(&mut self) -> Result<(), (usize, IoFault)> {
        let t = self.try_flush_writeback()?;
        self.data_elapsed_ns += t;
        Ok(())
    }

    // ----- fault injection --------------------------------------------------

    /// Install a seeded fault plan on every IO server (reseeded per disk).
    /// Use the `try_*` entry points afterwards — the infallible ones panic
    /// when a fault fires.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.array.install_faults(plan);
    }

    /// Remove all fault injectors.
    pub fn clear_faults(&mut self) {
        self.array.clear_faults();
    }

    /// Restore power to every IO server after injected power cuts (their
    /// volatile caches are lost).
    pub fn power_restore(&mut self) {
        self.array.power_restore();
    }

    /// One IO server's fault counters, when a plan is installed.
    pub fn fault_stats(&self, ost: usize) -> Option<&FaultStats> {
        self.array.disk(ost).fault_stats()
    }

    /// Is any IO server dead from an injected power cut?
    pub fn any_powered_off(&self) -> bool {
        (0..self.total_osts()).any(|i| self.array.disk(i).powered_off())
    }

    /// Convenience: run `f` inside a round and return the round time.
    pub fn round<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, Nanos) {
        self.begin_round();
        let r = f(self);
        (r, self.end_round())
    }

    // ----- data path --------------------------------------------------------

    /// Write `len` blocks at `offset` on behalf of `stream`. Unmapped
    /// blocks are allocated through the configured policy (this is the
    /// extending-write path the whole paper is about); mapped blocks are
    /// overwritten in place.
    pub fn write(&mut self, file: OpenFile, stream: StreamId, offset: u64, len: u64) {
        self.try_write(file, stream, offset, len)
            .unwrap_or_else(|(ost, f)| panic!("unhandled fault on OST {ost}: {f}"));
    }

    /// Fallible [`FileSystem::write`]. Writes buffer in the write-back
    /// cache, so the only fault observable *at write time* is a dead
    /// server: buffering data toward an OST that lost power fails
    /// immediately, the way a real client's dirty pages would error once
    /// the server is unreachable. All other faults surface at submission
    /// time ([`FileSystem::try_end_round`] / [`FileSystem::try_sync_data`]).
    pub fn try_write(
        &mut self,
        file: OpenFile,
        stream: StreamId,
        offset: u64,
        len: u64,
    ) -> Result<(), (usize, IoFault)> {
        for i in 0..self.total_osts() {
            if self.array.disk(i).powered_off() {
                let writes = self
                    .fault_stats(i)
                    .map(|s| s.writes_seen)
                    .unwrap_or_default();
                return Err((
                    i,
                    IoFault::PowerCut {
                        after_writes: writes,
                    },
                ));
            }
        }
        self.write_inner(file, stream, offset, len);
        Ok(())
    }

    fn write_inner(&mut self, file: OpenFile, stream: StreamId, offset: u64, len: u64) {
        assert!(self.round_open, "write outside a round");
        assert!(len > 0, "zero-length write");
        let shift = self.files[&file.0].ost_shift;
        let striping = self.files[&file.0].striping(self.config.stripe_blocks);
        let pieces = striping.split(offset, len, shift);
        let mut new_extents: u64 = 0;
        let delayed = self.config.policy == mif_alloc::PolicyKind::Delayed;
        for (col, local, run, _) in pieces {
            let col = col as usize;
            // The content of this span is changing: any replica or stripe
            // group derived from it no longer matches the primary. Tier
            // source coordinates are column-space, so this key survives a
            // drain moving the column to another bay.
            self.tier
                .invalidate_overlap(file.0 .0, col as u32, local, run);
            let state = self.files.get_mut(&file.0).expect("file exists");
            let ost_idx = state.ost_map[col] as usize;
            let tree = &mut state.trees[col];

            if delayed {
                // Delayed allocation: buffer the unmapped ranges; they are
                // allocated (coalesced) at write-back time. Mapped portions
                // are overwrites and queue normally below.
                for (gap_start, gap_len) in tree.gaps(local, run) {
                    self.delayed_pending
                        .entry((file.0, col))
                        .or_default()
                        .push((gap_start, gap_len));
                    self.writeback_blocks += gap_len;
                }
                for (phys, l) in state.trees[col].resolve(local, run) {
                    self.writeback[ost_idx].push(BlockRequest::write(phys, l));
                    self.writeback_blocks += l;
                }
                continue;
            }

            // Copy-on-write: already-mapped blocks in the written range
            // relocate — free the old placement and let the hole-allocation
            // below place them at the log head. Perfect for the write path;
            // the reason §II-B says CoW "read traffic can be compromised".
            if self.config.policy == mif_alloc::PolicyKind::Cow {
                for (old_phys, old_len) in tree.remove(local, run) {
                    self.osts[ost_idx].alloc.free(old_phys, old_len);
                    self.array.disk_mut(ost_idx).invalidate(old_phys, old_len);
                }
            }

            let state = self.files.get_mut(&file.0).expect("file exists");
            let tree = &mut state.trees[col];
            // Allocate the holes (extending portion) in arrival order.
            for (gap_start, gap_len) in tree.gaps(local, run) {
                let ost = &mut self.osts[ost_idx];
                let runs = ost
                    .policy
                    .extend(&ost.alloc, file.0, stream, gap_start, gap_len);
                let mut logical = gap_start;
                let before = tree.extent_count();
                for (phys, l) in runs {
                    tree.insert(Extent::new(logical, phys, l));
                    logical += l;
                }
                debug_assert_eq!(logical, gap_start + gap_len, "policy short-allocated");
                let added = tree.extent_count().saturating_sub(before) as u64;
                // Layout updates cost MDS CPU proportional to the extents
                // generated (merging/indexing, Table I).
                self.mds_cpu_ns += added * self.config.mds_cpu_ns_per_extent;
                new_extents += added;
            }

            // Writes land in the write-back cache; they reach the disks in
            // large sorted flushes.
            for (phys, l) in state.trees[col].resolve(local, run) {
                self.writeback[ost_idx].push(BlockRequest::write(phys, l));
                self.writeback_blocks += l;
            }
        }
        let state = self.files.get_mut(&file.0).expect("file exists");
        state.size_blocks = state.size_blocks.max(offset + len);
        let _ = new_extents;
    }

    /// Read `len` blocks at `offset` as `stream`. Requests carry a
    /// per-(stream, file) readahead context, so each sequential reader
    /// keeps its own ramp even when many readers interleave — the kernel's
    /// per-`struct file` readahead. Holes are skipped.
    pub fn read(&mut self, file: OpenFile, stream: StreamId, offset: u64, len: u64) {
        assert!(self.round_open, "read outside a round");
        let ctx = stream.as_u64() ^ file.0 .0.rotate_left(17);
        let shift = self.files[&file.0].ost_shift;
        let striping = self.files[&file.0].striping(self.config.stripe_blocks);
        let pieces = striping.split(offset, len, shift);
        for (col, local, run, _) in pieces {
            let col = col as usize;
            let state = self.files.get(&file.0).expect("file exists");
            let ost_idx = state.ost_map[col] as usize;
            for (phys, l) in state.trees[col].resolve(local, run) {
                self.pending[ost_idx].push(BlockRequest::read(phys, l).with_ctx(ctx));
            }
        }
    }

    /// Defragment (replicate-and-switch) a logical range: copy each OST's
    /// fragmented runs into one freshly allocated contiguous run, remap,
    /// and free the old placement — the data-reorganization approach of
    /// BORG/FS2/InterferenceRemoval (§II-B). The copy I/O is charged (read
    /// of the old placement + write of the new), which is exactly the
    /// "replication is not free at runtime" cost the paper holds against
    /// this class of solutions. Returns the simulated time spent.
    pub fn defragment_range(&mut self, file: OpenFile, offset: u64, len: u64) -> Nanos {
        assert!(!self.round_open, "defragment outside a round");
        self.sync_data();
        let t0 = self.data_elapsed_ns();
        let shift = self.files[&file.0].ost_shift;
        let striping = self.files[&file.0].striping(self.config.stripe_blocks);
        for (col, local, run, _) in striping.split(offset, len, shift) {
            let col = col as usize;
            let ost_idx = self.files[&file.0].ost_map[col] as usize;
            // Mapped logical sub-ranges and their physical runs, in order.
            type Runs = Vec<(u64, u64)>;
            let (subs, old_runs): (Runs, Runs) = {
                let tree = &self.files[&file.0].trees[col];
                let subs: Vec<(u64, u64)> = tree
                    .extents()
                    .filter(|e| e.logical < local + run && local < e.logical_end())
                    .map(|e| {
                        let lo = e.logical.max(local);
                        let hi = e.logical_end().min(local + run);
                        (lo, hi - lo)
                    })
                    .collect();
                (subs, tree.resolve(local, run))
            };
            if old_runs.len() <= 1 {
                continue; // already contiguous (or a hole)
            }
            let total: u64 = subs.iter().map(|r| r.1).sum();
            // A contiguous destination near the old data.
            let Some(dest) = self.osts[ost_idx].alloc.alloc_run(old_runs[0].0, total) else {
                continue; // no contiguous space: nothing to gain
            };
            // Copy: read the old placement, write the new run.
            self.begin_round();
            for &(phys, l) in &old_runs {
                self.pending[ost_idx].push(BlockRequest::read(phys, l));
            }
            self.pending[ost_idx].push(BlockRequest::write(dest, total));
            self.end_round();
            // Remap and free the old placement.
            let state = self.files.get_mut(&file.0).expect("file exists");
            let freed = state.trees[col].remove(local, run);
            let mut dpos = dest;
            for (lstart, l) in subs {
                state.trees[col].insert(Extent::new(lstart, dpos, l));
                dpos += l;
            }
            for (phys, l) in freed {
                self.osts[ost_idx].alloc.free(phys, l);
                self.array.disk_mut(ost_idx).invalidate(phys, l);
            }
        }
        self.data_elapsed_ns() - t0
    }

    // ----- defrag-engine hooks ---------------------------------------------
    //
    // `crates/defrag` drives its crash-safe relocation protocol through the
    // two hooks below plus the read-only accessors (`physical_layout`,
    // `allocator`, `block_allocated`). Unlike `defragment_range` above —
    // the §II-B replicate-and-switch baseline, which copies and remaps in
    // one non-atomic swoop — the engine separates the copy (fallible IO)
    // from the remap (a WAL-logged transaction), so a crash between them
    // leaves a recoverable state.

    /// Copy one relocation's data: read the old physical runs from
    /// `src_ost`, write the contiguous destination run on `dst_ost`
    /// (same OST for defrag, another bay for a drain evacuation),
    /// charging the IO. The caller owns both placements (old mapping still
    /// live, `dest` already claimed via `dst_ost`'s allocator) — this only
    /// moves bytes. Returns the simulated time; a fault surfaces as `Err`
    /// with nothing remapped.
    pub fn defrag_try_copy(
        &mut self,
        src_ost: usize,
        old_runs: &[(u64, u64)],
        dst_ost: usize,
        dest: u64,
        total: u64,
    ) -> Result<Nanos, (usize, IoFault)> {
        assert!(!self.round_open, "defrag copy inside a round");
        self.try_sync_data()?;
        self.begin_round();
        for &(phys, l) in old_runs {
            self.pending[src_ost].push(BlockRequest::read(phys, l));
        }
        self.pending[dst_ost].push(BlockRequest::write(dest, total));
        self.try_end_round()
    }

    /// Apply (or re-apply) a relocation's extent remap: drop the old
    /// mapping of `logical..logical+len` in stripe column `col`, map its
    /// formerly-mapped sub-ranges consecutively onto the contiguous run at
    /// `dest` on `dst_ost` (holes preserved), free the old blocks on the
    /// column's *previous* OST, and repoint the column at `dst_ost`.
    /// `total` is the mapped-block count — the destination run's length.
    /// Same-OST defrag passes the column's current OST as `dst_ost`; a
    /// drain passes the evacuation target and must cover the column's
    /// whole mapped range (a column has exactly one physical home).
    ///
    /// Idempotent: if the span already resolves to exactly the destination
    /// run *and* the column already points at `dst_ost`, the remap was
    /// applied before the crash; nothing changes and `false` comes back.
    /// WAL redo after `Commit` relies on this.
    #[allow(clippy::too_many_arguments)]
    pub fn defrag_apply_remap(
        &mut self,
        file: OpenFile,
        col: usize,
        logical: u64,
        len: u64,
        dst_ost: usize,
        dest: u64,
        total: u64,
    ) -> bool {
        let Some(state) = self.files.get_mut(&file.0) else {
            return false;
        };
        let src_ost = state.ost_map[col] as usize;
        let tree = &mut state.trees[col];
        if src_ost == dst_ost && tree.resolve(logical, len) == [(dest, total)] {
            return false; // already applied (WAL redo)
        }
        if src_ost != dst_ost {
            debug_assert_eq!(
                tree.mapped_blocks(),
                tree.resolve(logical, len).iter().map(|r| r.1).sum::<u64>(),
                "cross-OST remap must cover the column's whole mapping"
            );
        }
        let subs: Vec<(u64, u64)> = tree
            .extents()
            .filter(|e| e.logical < logical + len && logical < e.logical_end())
            .map(|e| {
                let lo = e.logical.max(logical);
                let hi = e.logical_end().min(logical + len);
                (lo, hi - lo)
            })
            .collect();
        debug_assert_eq!(
            subs.iter().map(|r| r.1).sum::<u64>(),
            total,
            "remap transaction does not match the live mapping"
        );
        let freed = tree.remove(logical, len);
        let mut dpos = dest;
        for (lstart, l) in subs {
            tree.insert(Extent::new(lstart, dpos, l));
            dpos += l;
        }
        state.ost_map[col] = dst_ost as u32;
        for (phys, l) in freed {
            self.osts[src_ost].alloc.free(phys, l);
            self.array.disk_mut(src_ost).invalidate(phys, l);
        }
        true
    }

    /// Repoint a column that maps *no* blocks at a new physical OST — the
    /// drain driver's path for files that never wrote to the draining
    /// bay's column. Pure metadata (there is nothing to copy, claim or
    /// journal); returns `false` if the column holds extents (use the
    /// relocation protocol) or already points at `dst_ost`.
    pub fn retarget_empty_column(&mut self, file: OpenFile, col: usize, dst_ost: usize) -> bool {
        let Some(state) = self.files.get_mut(&file.0) else {
            return false;
        };
        if state.trees[col].extent_count() != 0 || state.ost_map[col] as usize == dst_ost {
            return false;
        }
        state.ost_map[col] = dst_ost as u32;
        true
    }

    // ----- tier-engine hooks -----------------------------------------------
    //
    // `crates/tier` drives replica placement, 4+2 parity encoding and
    // rebuild through these hooks, following the defrag engine's shape:
    // probe/claim through the allocator, log an Intent, move bytes with
    // `tier_try_io` (fallible IO, nothing registered yet), log a Commit,
    // then register the artifact in the tier map. A crash between any two
    // steps is recoverable because the destination run carries no state
    // anyone depends on until the map update.

    /// The tier map: replicas and stripe groups derived from file data.
    pub fn tier(&self) -> &TierMap {
        &self.tier
    }

    /// Mutable tier map (artifact registration, invalidation, teardown).
    pub fn tier_mut(&mut self) -> &mut TierMap {
        &mut self.tier
    }

    /// Move one tier transaction's bytes: submit `reads` then `writes`
    /// (each `(ost, phys, len)`) as one round, charging the IO. Used for
    /// replica copies (read primary, write copy), parity encodes (read
    /// members, write parity) and rebuild (read survivors, rewrite the
    /// lost run). A fault surfaces as `Err` with nothing registered.
    pub fn tier_try_io(
        &mut self,
        reads: &[(usize, u64, u64)],
        writes: &[(usize, u64, u64)],
    ) -> Result<Nanos, (usize, IoFault)> {
        assert!(!self.round_open, "tier IO inside a round");
        self.try_sync_data()?;
        self.begin_round();
        for &(ost, phys, len) in reads {
            self.pending[ost].push(BlockRequest::read(phys, len));
        }
        for &(ost, phys, len) in writes {
            self.pending[ost].push(BlockRequest::write(phys, len));
        }
        self.try_end_round()
    }

    /// Free one allocator-owned tier run (teardown commit / intent
    /// rollback) and drop its cached blocks.
    pub fn tier_free_run(&mut self, ost: usize, phys: u64, len: u64) {
        self.osts[ost].alloc.free(phys, len);
        self.array.disk_mut(ost).invalidate(phys, len);
    }

    /// Is any block of `phys..phys + len` on `ost` mapped by a live file
    /// extent? Tier-WAL recovery uses this ownership check before rolling
    /// back a dangling intent: a destination the files own was never the
    /// tier layer's to free.
    pub fn run_mapped_by_any_file(&self, ost: usize, phys: u64, len: u64) -> bool {
        self.files.values().any(|f| {
            f.ost_map
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o as usize == ost)
                .any(|(col, _)| {
                    f.trees[col]
                        .extents()
                        .any(|e| e.physical < phys + len && phys < e.physical + e.len)
                })
        })
    }

    /// Fragment the OSTs' free space: allocate scattered holes so `frac` of
    /// every disk is occupied in runs of `hole_blocks`, spaced out evenly.
    /// Models a deployed file system whose free space is no longer one
    /// giant run — the condition under which reservation actually protects
    /// a file from inter-file fragmentation and vanilla allocation splits
    /// requests across holes (§I).
    pub fn fragment_free_space(&mut self, frac: f64, hole_blocks: u64) {
        assert!((0.0..1.0).contains(&frac) && hole_blocks > 0);
        let total = self.config.geometry.blocks;
        let holes = ((total as f64 * frac) / hole_blocks as f64) as u64;
        if holes == 0 {
            return;
        }
        let spacing = total / holes;
        assert!(spacing > hole_blocks, "fragmentation fraction too high");
        for (i, ost) in self.osts.iter().enumerate() {
            if !self.health[i].accepts_placements() {
                continue; // absent/failed bays have no free space to age
            }
            for h in 0..holes {
                // alloc_at keeps the pattern exact; failures (group
                // boundaries) are skipped.
                let _ = ost.alloc.alloc_at(h * spacing, hole_blocks);
            }
        }
    }

    // ----- introspection ----------------------------------------------------

    /// Total extents of a file across all OSTs (Table I "Seg Counts").
    pub fn file_extents(&self, file: OpenFile) -> u64 {
        self.files
            .get(&file.0)
            .map(|f| f.trees.iter().map(|t| t.extent_count() as u64).sum())
            .unwrap_or(0)
    }

    /// File size in blocks.
    pub fn file_size(&self, file: OpenFile) -> u64 {
        self.files.get(&file.0).map(|f| f.size_blocks).unwrap_or(0)
    }

    /// Blocks physically allocated to the file (mapped blocks).
    pub fn file_allocated(&self, file: OpenFile) -> u64 {
        self.files
            .get(&file.0)
            .map(|f| f.trees.iter().map(|t| t.mapped_blocks()).sum())
            .unwrap_or(0)
    }

    /// Data-path elapsed time accumulated over all rounds.
    pub fn data_elapsed_ns(&self) -> Nanos {
        self.data_elapsed_ns
    }

    /// Aggregated data-disk statistics.
    pub fn data_stats(&self) -> DiskStats {
        self.array.stats_total()
    }

    /// Aggregated per-command service-time histogram over the data disks.
    pub fn data_latency(&self) -> mif_simdisk::LatencyHistogram {
        self.array.latency_total()
    }

    /// Enable blktrace-style command recording on every data disk.
    pub fn enable_disk_recording(&mut self, capacity: usize) {
        for i in 0..self.total_osts() {
            self.array.disk_mut(i).enable_recording(capacity);
        }
    }

    /// Recorded commands of one data disk, oldest first.
    pub fn disk_events(&self, ost: usize) -> Vec<mif_simdisk::DiskEvent> {
        self.array.disk(ost).recorder().events()
    }

    /// Free blocks across all OSTs.
    pub fn free_blocks(&self) -> u64 {
        self.osts.iter().map(|o| o.alloc.free_blocks()).sum()
    }

    /// Drop every data-disk cache (between write and read phases, so reads
    /// hit the platter as in the paper's experiments). Dirty write-back
    /// data is flushed (and charged) first.
    pub fn drop_data_caches(&mut self) {
        self.sync_data();
        self.array.drop_caches();
    }

    /// The metadata server (metadata benchmarks drive it directly).
    pub fn mds(&mut self) -> &mut Mds {
        &mut self.mds
    }

    /// Metrics snapshot for the Table I harness.
    pub fn metrics(&self) -> FsMetrics {
        let mut m = FsMetrics {
            elapsed_ns: self.data_elapsed_ns,
            mds_cpu_ns: self.mds_cpu_ns,
            files: self.files.len() as u64,
            ..Default::default()
        };
        for f in self.files.values() {
            for t in &f.trees {
                m.add_tree(t);
            }
        }
        m
    }

    /// The inode number the MDS assigned to a file.
    pub fn ino_of(&self, file: OpenFile) -> Option<InodeNo> {
        self.files.get(&file.0).map(|f| f.ino)
    }

    /// The file's extent layout in one stripe column: `(column-local
    /// logical, physical, len)` runs in logical order (visualization /
    /// diagnostics). Physical blocks live on [`Self::ost_of_column`]'s
    /// bay. Columns past the file's width resolve to an empty layout —
    /// files narrower than the current population simply have no data on
    /// the extra bays.
    pub fn physical_layout(&self, file: OpenFile, col: usize) -> Vec<(u64, u64, u64)> {
        self.files
            .get(&file.0)
            .and_then(|f| f.trees.get(col))
            .map(|t| {
                t.extents()
                    .map(|e| (e.logical, e.physical, e.len))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Stripe-column count (width) of a file — the active OST count when
    /// it was created. 0 for unknown files.
    pub fn column_count(&self, file: OpenFile) -> usize {
        self.files.get(&file.0).map(|f| f.trees.len()).unwrap_or(0)
    }

    /// The physical OST currently hosting one of the file's columns.
    pub fn ost_of_column(&self, file: OpenFile, col: usize) -> Option<u32> {
        self.files
            .get(&file.0)
            .and_then(|f| f.ost_map.get(col))
            .copied()
    }

    /// The file's full column → physical OST map.
    pub fn ost_map_of(&self, file: OpenFile) -> Vec<u32> {
        self.files
            .get(&file.0)
            .map(|f| f.ost_map.clone())
            .unwrap_or_default()
    }

    /// Is a physical block on `ost` currently allocated? (visualization /
    /// diagnostics — includes preallocation windows.)
    pub fn block_allocated(&self, ost: usize, block: u64) -> bool {
        self.osts[ost].alloc.is_allocated(block)
    }

    // ----- disk-population lifecycle ---------------------------------------
    //
    // Per-bay health drives placement and maintenance: allocators refuse
    // draining/failed/absent bays, defrag and tier route around them, fsck
    // annotates instead of false-flagging, and the scrubber walks only
    // serving bays. Transitions are validated by the
    // [`DiskHealth::can_transition`] machine; the concurrent front-end
    // mirrors this vector into per-shard atomics for its lock-free hot
    // paths and serializes it back here on quiesce.

    /// Total disk bays (active + spares), the length of every per-OST
    /// structure.
    pub fn total_osts(&self) -> usize {
        self.config.total_osts()
    }

    /// One bay's population state.
    pub fn ost_health(&self, ost: usize) -> DiskHealth {
        self.health[ost]
    }

    /// All bays' population states, in bay order.
    pub fn ost_healths(&self) -> Vec<DiskHealth> {
        self.health.clone()
    }

    /// Drive one bay through a health transition. Panics on a jump the
    /// state machine forbids (e.g. `Absent → Draining`) — lifecycle bugs
    /// must not be silently absorbed.
    pub fn set_ost_health(&mut self, ost: usize, to: DiskHealth) {
        let from = self.health[ost];
        assert!(
            from.can_transition(to),
            "illegal OST {ost} health transition {from} -> {to}"
        );
        self.health[ost] = to;
    }

    /// Bays currently accepting new placements (healthy), in bay order —
    /// the stripe target set for newly created files.
    pub fn active_osts(&self) -> Vec<u32> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.accepts_placements())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Kill one bay: the device stops serving IO (reads/writes fault with
    /// `DiskFailed`) and the bay leaves the placement set. Columns mapped
    /// there survive in metadata; a rebuild reconstructs their bytes from
    /// tier redundancy onto a replacement spindle.
    pub fn fail_ost(&mut self, ost: usize) {
        self.set_ost_health(ost, DiskHealth::Failed);
        self.array.disk_mut(ost).fail();
    }

    /// Populate an empty bay live: a fresh spindle joins the placement
    /// set. Existing files keep their width; files created from now on
    /// stripe over the grown set.
    pub fn add_ost(&mut self, ost: usize) {
        self.set_ost_health(ost, DiskHealth::Healthy);
        self.array.disk_mut(ost).replace();
        self.lifecycle.osts_added += 1;
    }

    /// Start evacuating one bay: it refuses *new* placements but keeps
    /// serving IO for the columns still on it while `mif-defrag`'s drain
    /// driver relocates them (crash-safe, WAL-journaled).
    pub fn begin_drain(&mut self, ost: usize) {
        self.set_ost_health(ost, DiskHealth::Draining);
    }

    /// Complete a drain: the bay must hold no file column; it leaves the
    /// population (`Absent`) and can later be re-added.
    pub fn finish_drain(&mut self, ost: usize) {
        assert!(
            !self
                .files
                .values()
                .any(|f| f.ost_map.iter().any(|&o| o as usize == ost)),
            "finish_drain with columns still on OST {ost}"
        );
        self.set_ost_health(ost, DiskHealth::Absent);
        // Tier artifacts housed on the retired bay die with it; invalid
        // runs are reaped by maintenance and their spans re-replicated.
        self.tier.invalidate_on_bay(ost as u32);
        self.lifecycle.drains_completed += 1;
    }

    /// Start rebuilding a failed bay onto a replacement spindle (fresh
    /// platters, empty cache, no latent damage). The rebuild engine then
    /// rewrites lost runs from tier redundancy.
    pub fn begin_rebuild(&mut self, ost: usize) {
        self.set_ost_health(ost, DiskHealth::Rebuilding);
        self.array.disk_mut(ost).replace();
    }

    /// Complete a rebuild: the bay serves and places again.
    pub fn finish_rebuild(&mut self, ost: usize) {
        self.set_ost_health(ost, DiskHealth::Healthy);
        self.lifecycle.rebuilds_completed += 1;
    }

    /// Cumulative lifecycle counters (rebuilds, drains, scrub work).
    pub fn lifecycle(&self) -> &LifecycleStats {
        &self.lifecycle
    }

    /// Mutable lifecycle counters — the scrub/drain/rebuild drivers
    /// account their work here.
    pub fn lifecycle_mut(&mut self) -> &mut LifecycleStats {
        &mut self.lifecycle
    }

    /// Plant latent damage on one physical block (a grown media defect).
    /// Ordinary reads return stale bytes silently — only a scrub detects
    /// it, and any overwrite heals it. Test/bench corruption injection.
    pub fn damage_block(&mut self, ost: usize, block: u64) {
        self.array.disk_mut(ost).corrupt_block(block);
    }

    /// All latent-damaged blocks on one bay (oracle for tests/benches).
    pub fn damaged_blocks(&self, ost: usize) -> Vec<u64> {
        self.array.disk(ost).damaged_blocks()
    }

    /// Latent-damaged blocks within a physical range on one bay.
    pub fn damaged_in(&self, ost: usize, start: u64, len: u64) -> Vec<u64> {
        self.array.disk(ost).damaged_in(start, len)
    }

    /// Scrub-read a physical range on one bay: charges the media time of
    /// a verifying read and returns the damaged blocks found. Fails with
    /// `DiskFailed` on a dead bay.
    pub fn scrub_disk_range(
        &mut self,
        ost: usize,
        start: u64,
        len: u64,
    ) -> Result<Vec<u64>, IoFault> {
        self.array.disk_mut(ost).scrub_range(start, len)
    }

    // ----- fsck hooks -------------------------------------------------------
    //
    // The whole-filesystem checker (`mif-fsck`) snapshots allocator and
    // extent state through the read-only accessors below, and applies its
    // repairs through the `fsck_*` mutators. Corruption *injection* (the
    // `corrupt_*` methods) deliberately bypasses the allocator's
    // double-alloc/double-free guards — they exist so tests and the fsck
    // harness can plant the exact inconsistency classes the checker must
    // find, and have no place in the normal write path.

    /// All live file handles, sorted by file id (deterministic iteration
    /// for the checker's image builder).
    pub fn file_handles(&self) -> Vec<OpenFile> {
        let mut ids: Vec<OpenFile> = self.files.keys().map(|&id| OpenFile(id)).collect();
        ids.sort_by_key(|f| f.0 .0);
        ids
    }

    /// The file's starting-OST rotation (checker reconstructs global
    /// logical offsets from per-OST local ones).
    pub fn ost_shift_of(&self, file: OpenFile) -> Option<u32> {
        self.files.get(&file.0).map(|f| f.ost_shift)
    }

    /// One OST's block allocator (checker bitmap snapshots).
    pub fn allocator(&self, ost: usize) -> &GroupedAllocator {
        &self.osts[ost].alloc
    }

    /// The striping function a file was created under (width = its column
    /// count; stripe unit from the config).
    pub fn striping_of(&self, file: OpenFile) -> Option<Striping> {
        self.files
            .get(&file.0)
            .map(|f| f.striping(self.config.stripe_blocks))
    }

    /// Release every file's unconsumed preallocations on all OSTs. Offline
    /// fsck runs this before the leak check — like ext4 discarding
    /// in-memory preallocation ranges at recovery — so reservation windows
    /// are not misread as leaked blocks.
    pub fn release_preallocations(&mut self) {
        let ids: Vec<FileId> = self.files.keys().copied().collect();
        for ost in &mut self.osts {
            for &id in &ids {
                ost.policy.finalize(&ost.alloc, id);
            }
        }
    }

    /// Corruption injection: force one allocator bitmap bit on `ost` to
    /// `set`, bypassing the double-op guards. Returns whether it changed.
    pub fn corrupt_bitmap(&mut self, ost: usize, block: u64, set: bool) -> bool {
        self.osts[ost].alloc.force_bit(block, set)
    }

    /// Corruption injection: silently remap the extent covering `logical`
    /// in column `col` to start at `new_phys` — the on-disk tree now points
    /// at blocks the bitmap never granted it (or that another file owns).
    /// Returns the old physical start, or `None` if `logical` is a hole.
    pub fn corrupt_extent_remap(
        &mut self,
        file: OpenFile,
        col: usize,
        logical: u64,
        new_phys: u64,
    ) -> Option<u64> {
        self.files.get_mut(&file.0)?.trees[col].corrupt_set_physical(logical, new_phys)
    }

    /// Fsck repair: drop the mapping for a logical range *without freeing
    /// the physical blocks* — used when two extents claim the same blocks
    /// and the loser's mapping must be discarded while ownership stays
    /// with the winner. Returns the number of blocks unmapped.
    pub fn fsck_discard_mapping(
        &mut self,
        file: OpenFile,
        col: usize,
        logical: u64,
        len: u64,
    ) -> u64 {
        let Some(state) = self.files.get_mut(&file.0) else {
            return 0;
        };
        state.trees[col]
            .remove(logical, len)
            .iter()
            .map(|&(_, l)| l)
            .sum()
    }

    /// Fsck repair: adopt orphaned physical runs (allocated in the bitmap
    /// but owned by no extent) into a `lost+found` file on `ost`. The runs
    /// are appended to the file's extent tree; the bitmap bits stay set,
    /// so conservation (free + mapped == total) is restored without
    /// guessing which file the blocks belonged to. Returns the handle.
    pub fn fsck_adopt_orphan_runs(&mut self, ost: usize, runs: &[(u64, u64)]) -> OpenFile {
        let lf = self
            .files
            .iter()
            .find(|(_, f)| f.name == "lost+found")
            .map(|(&id, _)| OpenFile(id))
            .unwrap_or_else(|| self.create("lost+found", None));
        let state = self.files.get_mut(&lf.0).expect("lost+found exists");
        // Adopt into the column living on the orphans' physical OST; if
        // lost+found has no column there (the bay joined after it was
        // created, or was draining then), append one — widths are
        // per-file, so growing this file's map is legal.
        let col = match state.ost_map.iter().position(|&o| o as usize == ost) {
            Some(c) => c,
            None => {
                state.ost_map.push(ost as u32);
                state.trees.push(ExtentTree::new());
                state.trees.len() - 1
            }
        };
        let tree = &mut state.trees[col];
        let mut logical = tree.logical_size();
        for &(phys, len) in runs {
            tree.insert(Extent::new(logical, phys, len));
            logical += len;
        }
        lf
    }

    /// Fsck repair: forget the tier run of raw file id `file` at (`ost`,
    /// `phys`) *without freeing its blocks* — used when a tier run loses
    /// an ownership conflict (the winner keeps the blocks), or when its
    /// blocks were never granted by the bitmap in the first place.
    /// Returns whether a run was dropped (idempotent).
    pub fn fsck_drop_tier_run(&mut self, file: u64, ost: usize, phys: u64) -> bool {
        self.tier.remove_run(file, ost as u32, phys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_alloc::PolicyKind;

    fn fs(policy: PolicyKind) -> FileSystem {
        FileSystem::new(FsConfig::with_policy(policy, 2))
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("a", None);
        let s = StreamId::new(1, 1);
        f.begin_round();
        f.write(file, s, 0, 64);
        f.end_round();
        f.sync_data();
        assert!(f.data_elapsed_ns() > 0);
        assert_eq!(f.file_size(file), 64);
        assert_eq!(f.file_allocated(file), 64);

        f.drop_data_caches();
        f.begin_round();
        f.read(file, s, 0, 64);
        f.end_round();
        assert!(f.data_stats().bytes_read > 0);
    }

    #[test]
    fn rename_repoints_name_and_resolves_old_ino() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("orig", None);
        let s = StreamId::new(1, 1);
        f.begin_round();
        f.write(file, s, 0, 16);
        f.end_round();
        let old_ino = f.mds().lookup(ROOT_INO, "orig").expect("exists");
        let new_ino = f.rename(file, "moved").expect("rename succeeds");
        assert_eq!(f.open("moved"), Some(file));
        assert!(f.open("orig").is_none());
        // Embedded mode re-composes the number but keeps the old one
        // resolving until management routines exit (§IV-B).
        assert_eq!(f.open_by_ino(old_ino), Some(file));
        f.end_management();
        if new_ino != old_ino {
            assert!(f.open_by_ino(old_ino).is_none());
        }
        assert_eq!(f.file_allocated(file), 16, "data untouched by rename");
    }

    #[test]
    fn write_stripes_over_osts() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("a", None);
        let s = StreamId::new(1, 1);
        f.begin_round();
        // 2 stripes worth: both OSTs get data.
        f.write(file, s, 0, 512);
        f.end_round();
        f.sync_data();
        let per_disk = f.array.stats_per_disk();
        assert!(per_disk.iter().all(|d| d.bytes_written > 0));
    }

    #[test]
    fn overwrite_does_not_reallocate() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("a", None);
        let s = StreamId::new(1, 1);
        f.round(|f| f.write(file, s, 0, 32));
        let allocated = f.file_allocated(file);
        let free = f.free_blocks();
        f.round(|f| f.write(file, s, 0, 32));
        assert_eq!(f.file_allocated(file), allocated);
        assert_eq!(f.free_blocks(), free);
    }

    #[test]
    fn interleaved_streams_fragment_reservation_but_not_ondemand() {
        let run = |policy| {
            let mut f = FileSystem::new(FsConfig::with_policy(policy, 1));
            let file = f.create("shared", None);
            let streams: Vec<_> = (0..8).map(|i| StreamId::new(i, 0)).collect();
            for round in 0..16u64 {
                f.begin_round();
                for (i, &s) in streams.iter().enumerate() {
                    // Each stream appends within its own region.
                    f.write(file, s, i as u64 * 1024 + round * 4, 4);
                }
                f.end_round();
            }
            let e = f.file_extents(file);
            f.close(file);
            e
        };
        let reservation = run(PolicyKind::Reservation);
        let ondemand = run(PolicyKind::OnDemand);
        assert!(
            ondemand * 4 <= reservation,
            "on-demand {ondemand} vs reservation {reservation} extents"
        );
    }

    #[test]
    fn static_policy_uses_hint_for_contiguity() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Static, 1));
        let file = f.create("shared", Some(8 * 1024));
        let streams: Vec<_> = (0..8).map(|i| StreamId::new(i, 0)).collect();
        for round in 0..16u64 {
            f.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                f.write(file, s, i as u64 * 1024 + round * 4, 4);
            }
            f.end_round();
        }
        // Identity mapping: at most one extent per written region... in
        // fact regions coalesce into one whenever adjacent.
        assert!(f.file_extents(file) <= 8);
    }

    #[test]
    fn unlink_returns_space() {
        let mut f = fs(PolicyKind::OnDemand);
        let file = f.create("a", None);
        let s = StreamId::new(1, 1);
        let total = f.free_blocks();
        f.round(|f| f.write(file, s, 0, 64));
        f.close(file);
        assert!(f.free_blocks() < total);
        f.unlink(file);
        assert_eq!(f.free_blocks(), total);
    }

    #[test]
    fn metrics_count_extents_and_cpu() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("a", None);
        let s = StreamId::new(1, 1);
        f.round(|f| f.write(file, s, 0, 8));
        let m = f.metrics();
        assert!(m.extents >= 1);
        assert!(m.mds_cpu_ns > 0);
        assert_eq!(m.files, 1);
    }

    #[test]
    fn open_finds_created_file() {
        let mut f = fs(PolicyKind::Reservation);
        let a = f.create("a", None);
        assert_eq!(f.open("a"), Some(a));
        assert_eq!(f.open("missing"), None);
    }

    #[test]
    fn open_by_ino_resolves_current_identity() {
        let mut f = fs(PolicyKind::Reservation);
        let a = f.create("a", None);
        let ino = f.ino_of(a).expect("has an inode");
        assert_eq!(f.open_by_ino(ino), Some(a));
        assert_eq!(f.open_by_ino(mif_mds::InodeNo(0xDEAD)), None);
    }

    #[test]
    fn truncate_frees_the_tail_and_keeps_the_head() {
        let mut f = fs(PolicyKind::OnDemand);
        let total = f.free_blocks();
        let file = f.create("t", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(file, s, 0, 600));
        f.close(file);
        assert_eq!(f.file_allocated(file), 600);

        f.truncate(file, 200);
        assert_eq!(f.file_size(file), 200);
        assert_eq!(f.file_allocated(file), 200);
        assert_eq!(f.free_blocks(), total - 200);

        // Head still readable; tail is a hole. Growing again works.
        f.round(|f| {
            f.read(file, s, 0, 200);
            f.write(file, s, 200, 50);
        });
        f.sync_data();
        assert_eq!(f.file_allocated(file), 250);
        f.unlink(file);
        assert_eq!(f.free_blocks(), total);
    }

    #[test]
    fn truncate_to_larger_size_is_noop() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("t", None);
        f.round(|f| f.write(file, StreamId::new(1, 0), 0, 32));
        f.truncate(file, 100);
        assert_eq!(f.file_size(file), 32);
        assert_eq!(f.file_allocated(file), 32);
    }

    #[test]
    fn delayed_allocation_coalesces_interleaved_streams() {
        // §II-B: with no syncs, delayed allocation combines an interleaved
        // round sequence into a few large allocation requests.
        let run = |sync_every: Option<u64>| {
            let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Delayed, 1));
            let file = f.create("d", None);
            let streams: Vec<_> = (0..8).map(|i| StreamId::new(i, 0)).collect();
            for round in 0..32u64 {
                f.begin_round();
                for (i, &s) in streams.iter().enumerate() {
                    f.write(file, s, i as u64 * 256 + round * 4, 4);
                }
                f.end_round();
                if let Some(n) = sync_every {
                    if round % n == n - 1 {
                        f.sync_data();
                    }
                }
            }
            f.sync_data();
            f.file_extents(file)
        };
        let buffered = run(None);
        let synced = run(Some(1));
        assert!(
            buffered <= 16,
            "fully buffered: one run per region, got {buffered}"
        );
        assert!(
            synced > buffered * 4,
            "per-round fsync forces fragmented allocation: {synced} vs {buffered}"
        );
    }

    #[test]
    fn delayed_allocation_maps_everything_and_conserves_space() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Delayed, 2));
        let total = f.free_blocks();
        let file = f.create("d", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(file, s, 0, 64));
        // Nothing allocated until write-back.
        assert_eq!(f.file_allocated(file), 0);
        f.sync_data();
        assert_eq!(f.file_allocated(file), 64);
        f.unlink(file);
        assert_eq!(f.free_blocks(), total);
    }

    #[test]
    fn delayed_overwrite_after_flush_writes_in_place() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Delayed, 1));
        let file = f.create("d", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(file, s, 0, 16));
        f.sync_data();
        let allocated = f.file_allocated(file);
        f.round(|f| f.write(file, s, 0, 16));
        f.sync_data();
        assert_eq!(f.file_allocated(file), allocated, "overwrite reallocated");
    }

    #[test]
    fn cow_relocates_overwrites_and_conserves_space() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Cow, 1));
        let total = f.free_blocks();
        let file = f.create("c", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(file, s, 0, 64));
        f.sync_data();
        let first_layout = f.physical_layout(file, 0);
        assert_eq!(f.file_allocated(file), 64);

        // Overwrite the middle: CoW moves it to the log head.
        f.round(|f| f.write(file, s, 16, 8));
        f.sync_data();
        assert_eq!(f.file_allocated(file), 64, "no net growth");
        let second_layout = f.physical_layout(file, 0);
        assert_ne!(first_layout, second_layout, "overwrite relocated");
        assert!(
            f.file_extents(file) >= 3,
            "relocation fragments the mapping: {}",
            f.file_extents(file)
        );
        f.unlink(file);
        assert_eq!(f.free_blocks(), total);
    }

    #[test]
    fn cow_writes_never_overwrite_in_place() {
        // The defining CoW property: an overwrite's new physical location
        // differs from the old one.
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Cow, 1));
        let file = f.create("c", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(file, s, 0, 8));
        f.sync_data();
        let old = f.physical_layout(file, 0)[0].1;
        f.round(|f| f.write(file, s, 0, 8));
        f.sync_data();
        let new = f.physical_layout(file, 0)[0].1;
        assert_ne!(old, new);
    }

    #[test]
    fn defragment_collapses_extents_and_preserves_mapping() {
        // Build a fragmented shared file under reservation, defragment the
        // regions, verify mapping equivalence and extent collapse.
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, 1));
        let total = f.free_blocks();
        let file = f.create("frag", None);
        let streams: Vec<_> = (0..4).map(|i| StreamId::new(i, 0)).collect();
        for round in 0..16u64 {
            f.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                f.write(file, s, i as u64 * 64 + round * 4, 4);
            }
            f.end_round();
        }
        f.sync_data();
        f.close(file);
        let before = f.file_extents(file);
        assert!(before >= 32, "fragmented: {before} extents");

        let t = f.defragment_range(file, 0, 4 * 64);
        assert!(t > 0, "replication charged time");
        assert!(
            f.file_extents(file) <= 4,
            "defragmented: {} extents",
            f.file_extents(file)
        );
        assert_eq!(f.file_allocated(file), 4 * 64, "mapping preserved");
        f.unlink(file);
        assert_eq!(f.free_blocks(), total, "old placement freed");
    }

    #[test]
    fn defragment_skips_contiguous_and_holes() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Static, 1));
        let file = f.create("c", Some(64));
        f.round(|f| f.write(file, StreamId::new(0, 0), 0, 64));
        f.sync_data();
        let layout = f.physical_layout(file, 0);
        let t = f.defragment_range(file, 0, 64);
        assert_eq!(t, 0, "already contiguous: no copy");
        assert_eq!(f.physical_layout(file, 0), layout);
        // A pure hole is also a no-op.
        let sparse = f.create("s", None);
        assert_eq!(f.defragment_range(sparse, 0, 128), 0);
    }

    #[test]
    fn close_of_last_handle_releases_preallocations() {
        // Regression (defrag satellite): a closed file must not pin
        // reserved-but-unwritten window blocks out of the free pool.
        for policy in [PolicyKind::OnDemand, PolicyKind::Reservation] {
            let mut f = fs(policy);
            let total = f.free_blocks();
            let file = f.create("idle", None);
            f.round(|f| f.write(file, StreamId::new(1, 0), 0, 4));
            f.sync_data();
            assert!(
                total - f.free_blocks() > 4,
                "{policy}: windows reserved beyond the 4 written blocks"
            );
            assert!(f.has_live_preallocation(file), "{policy}");
            f.close(file);
            assert_eq!(
                total - f.free_blocks(),
                4,
                "{policy}: close left reserved-but-unwritten blocks pinned"
            );
            assert!(!f.has_live_preallocation(file), "{policy}");
            assert_eq!(f.open_handle_count(file), 0);
        }
    }

    #[test]
    fn windows_survive_until_last_handle_closes() {
        let mut f = fs(PolicyKind::OnDemand);
        let file = f.create("shared", None);
        let second = f.open("shared").expect("exists");
        assert_eq!(second, file);
        assert_eq!(f.open_handle_count(file), 2);
        f.round(|f| f.write(file, StreamId::new(1, 0), 0, 4));
        f.sync_data();
        let free_before = f.free_blocks();
        f.close(file);
        assert_eq!(f.open_handle_count(file), 1);
        assert_eq!(
            f.free_blocks(),
            free_before,
            "first close must not release another opener's windows"
        );
        assert!(f.has_live_preallocation(file));
        f.close(second);
        assert!(f.free_blocks() > free_before, "last close releases windows");
        assert!(!f.has_live_preallocation(file));
    }

    #[test]
    fn defrag_hooks_copy_and_remap_idempotently() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, 1));
        let file = f.create("frag", None);
        let streams: Vec<_> = (0..4).map(|i| StreamId::new(i, 0)).collect();
        for round in 0..8u64 {
            f.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                f.write(file, s, i as u64 * 64 + round * 4, 4);
            }
            f.end_round();
        }
        f.sync_data();
        f.close(file);
        let old_runs = f.files[&file.0].trees[0].resolve(0, 4 * 64);
        assert!(old_runs.len() > 1, "fragmented on purpose");
        let total: u64 = old_runs.iter().map(|r| r.1).sum();
        let dest = f.allocator(0).probe_run(0, total).expect("space exists");
        assert!(f.allocator(0).alloc_at(dest, total));

        let t = f
            .defrag_try_copy(0, &old_runs, 0, dest, total)
            .expect("no faults installed");
        assert!(t > 0, "copy IO is charged");
        assert!(f.defrag_apply_remap(file, 0, 0, 4 * 64, 0, dest, total));
        assert_eq!(
            f.files[&file.0].trees[0].resolve(0, 4 * 64),
            vec![(dest, total)]
        );
        // Redo (WAL replay after crash-post-commit) is a no-op.
        assert!(!f.defrag_apply_remap(file, 0, 0, 4 * 64, 0, dest, total));
        assert_eq!(f.file_allocated(file), total);
    }

    #[test]
    fn spare_bays_start_absent_and_join_on_add() {
        let mut cfg = FsConfig::with_policy(PolicyKind::Reservation, 2);
        cfg.spare_osts = 1;
        let mut f = FileSystem::new(cfg);
        assert_eq!(f.total_osts(), 3);
        assert_eq!(f.ost_health(2), DiskHealth::Absent);
        assert_eq!(f.active_osts(), vec![0, 1]);

        // Files created before the expansion stripe over 2 bays.
        let narrow = f.create("narrow", None);
        assert_eq!(f.column_count(narrow), 2);

        f.add_ost(2);
        assert_eq!(f.ost_health(2), DiskHealth::Healthy);
        assert_eq!(f.active_osts(), vec![0, 1, 2]);
        assert_eq!(f.lifecycle().osts_added, 1);

        // Files created after it stripe over 3; the old one keeps width 2.
        let wide = f.create("wide", None);
        assert_eq!(f.column_count(wide), 3);
        assert_eq!(f.ost_map_of(wide), vec![0, 1, 2]);
        assert_eq!(f.column_count(narrow), 2);

        let s = StreamId::new(1, 0);
        f.round(|f| f.write(wide, s, 0, 3 * 256));
        f.sync_data();
        assert_eq!(f.file_allocated(wide), 3 * 256);
        assert!(f.array.disk(2).stats().bytes_written > 0);
    }

    #[test]
    fn draining_bay_refuses_new_placements_but_serves_existing() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, 3));
        let old = f.create("old", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(old, s, 0, 3 * 256));
        f.sync_data();

        f.begin_drain(2);
        assert_eq!(f.ost_health(2), DiskHealth::Draining);
        // New files avoid the draining bay...
        let fresh = f.create("fresh", None);
        assert_eq!(f.ost_map_of(fresh), vec![0, 1]);
        // ...but the old file's column there still extends and reads.
        f.round(|f| f.write(old, s, 3 * 256, 3 * 256));
        f.sync_data();
        f.round(|f| f.read(old, s, 0, 6 * 256));
        assert_eq!(f.file_allocated(old), 6 * 256);
    }

    #[test]
    #[should_panic(expected = "illegal OST")]
    fn illegal_health_transition_panics() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, 2));
        f.set_ost_health(0, DiskHealth::Rebuilding); // Healthy -> Rebuilding: no
    }

    #[test]
    fn damage_is_latent_until_scrubbed_and_heals_on_write() {
        let mut f = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, 1));
        let file = f.create("d", None);
        let s = StreamId::new(1, 0);
        f.round(|f| f.write(file, s, 0, 64));
        f.sync_data();
        let (_, phys, _) = f.physical_layout(file, 0)[0];
        f.damage_block(0, phys + 3);
        // Ordinary read path: no error (latent).
        f.drop_data_caches();
        f.round(|f| f.read(file, s, 0, 64));
        // The scrub detects it; an overwrite heals it.
        assert_eq!(
            f.scrub_disk_range(0, phys, 64).expect("bay alive"),
            vec![phys + 3]
        );
        f.round(|f| f.write(file, s, 0, 64));
        f.sync_data();
        assert!(f.scrub_disk_range(0, phys, 64).expect("alive").is_empty());
    }

    #[test]
    #[should_panic(expected = "write outside a round")]
    fn write_requires_round() {
        let mut f = fs(PolicyKind::Reservation);
        let file = f.create("a", None);
        f.write(file, StreamId::new(1, 1), 0, 4);
    }
}
