//! # mif-core — the block-based parallel file system (Redbud analogue)
//!
//! Ties the substrates together into the system the paper evaluates
//! (§V-A): clients identified by stream IDs write files striped over the
//! shared disks of a JBOD; each IO server manages its disk's free space
//! through parallel allocation groups and one of the four allocation
//! policies; a metadata server tracks files and layouts and its CPU cost
//! scales with the extent count (Table I).
//!
//! * [`FileSystem`] — the facade: create/open/write/read/close/unlink plus
//!   round-based submission that models concurrent arrival order;
//! * [`striping`] — file logical blocks → (OST, OST-local block);
//! * [`collective`] — two-phase collective I/O aggregation (the ~40 MB
//!   requests the paper profiles in §V-C.2);
//! * [`metrics`] — extent counts per file and the MDS CPU-utilization
//!   proxy.
//!
//! # Example
//!
//! ```
//! use mif_core::{FileSystem, FsConfig};
//! use mif_alloc::{PolicyKind, StreamId};
//!
//! // A 2-disk file system running the paper's on-demand preallocation.
//! let mut fs = FileSystem::new(FsConfig::with_policy(PolicyKind::OnDemand, 2));
//! let file = fs.create("shared.out", None);
//!
//! // Two concurrent streams extend different regions of the shared file.
//! let (a, b) = (StreamId::new(1, 0), StreamId::new(2, 0));
//! for round in 0..8 {
//!     fs.begin_round();
//!     fs.write(file, a, round * 4, 4);          // stream A's region
//!     fs.write(file, b, 4096 + round * 4, 4);   // stream B's region
//!     fs.end_round();
//! }
//! fs.sync_data();
//!
//! // Despite the interleaved arrivals, each region stays contiguous:
//! assert!(fs.file_extents(file) <= 8);
//! assert_eq!(fs.file_allocated(file), 64);
//! ```

pub mod collective;
pub mod concurrent;
pub mod config;
pub mod fs;
pub mod metrics;
pub mod striping;
pub mod tier;

pub use collective::aggregate_collective;
pub use concurrent::{ConcurrentFs, ContentionSnapshot, FsStats};
pub use config::FsConfig;
pub use fs::{FileSystem, LifecycleStats, OpenFile};
pub use metrics::{mds_cpu_utilization, FsMetrics};
pub use mif_simdisk::DiskHealth;
pub use striping::Striping;
pub use tier::{
    DegradedSource, ReplicaRun, StripeGroup, TierMap, TierRun, STRIPE_DATA, STRIPE_PARITY,
};
