//! File-system metrics: fragmentation and MDS CPU proxy.

use mif_extent::ExtentTree;
use mif_simdisk::Nanos;

/// Snapshot of file-system health used by the Table I harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsMetrics {
    /// Total extents across all files and OSTs — the paper's "Seg Counts".
    pub extents: u64,
    /// Files measured.
    pub files: u64,
    /// Total mapped blocks.
    pub blocks: u64,
    /// Simulated elapsed time of the run.
    pub elapsed_ns: Nanos,
    /// MDS CPU time consumed handling extents.
    pub mds_cpu_ns: Nanos,
}

impl FsMetrics {
    pub fn add_tree(&mut self, tree: &ExtentTree) {
        self.extents += tree.extent_count() as u64;
        self.blocks += tree.mapped_blocks();
    }

    /// MDS CPU utilization over the run, 0.0–1.0.
    pub fn cpu_utilization(&self) -> f64 {
        mds_cpu_utilization(self.mds_cpu_ns, self.elapsed_ns)
    }
}

/// MDS CPU-utilization proxy (Table I): extent handling (merging,
/// indexing) consumes MDS CPU proportional to the extent count — "the less
/// extents in the parallel file systems to be operated, such as merging and
/// indexing, the less CPU load involved in MDS".
pub fn mds_cpu_utilization(cpu_ns: Nanos, elapsed_ns: Nanos) -> f64 {
    if elapsed_ns == 0 {
        0.0
    } else {
        (cpu_ns as f64 / elapsed_ns as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_extent::Extent;

    #[test]
    fn utilization_is_bounded() {
        assert_eq!(mds_cpu_utilization(0, 0), 0.0);
        assert_eq!(mds_cpu_utilization(50, 100), 0.5);
        assert_eq!(mds_cpu_utilization(500, 100), 1.0);
    }

    #[test]
    fn cpu_utilization_uses_elapsed() {
        let m = FsMetrics {
            elapsed_ns: 1_000_000,
            mds_cpu_ns: 250_000,
            ..Default::default()
        };
        assert!((m.cpu_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn metrics_accumulate_trees() {
        let mut m = FsMetrics::default();
        let mut t = ExtentTree::new();
        t.insert(Extent::new(0, 0, 4));
        t.insert(Extent::new(4, 100, 4));
        m.add_tree(&t);
        assert_eq!(m.extents, 2);
        assert_eq!(m.blocks, 8);
    }
}
