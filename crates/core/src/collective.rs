//! Two-phase collective I/O aggregation.
//!
//! §V-C.2: "the program's throughput with collective I/O performs is much
//! better than its non-collective version. Through profiling we find that
//! the size of collective-I/O requests is around 40MB, much larger than the
//! size of requests with non-collective I/O."
//!
//! MPI-IO's two-phase collective buffering redistributes the ranks'
//! interleaved pieces so that each *aggregator* writes one large contiguous
//! range. This module performs that exchange: given every rank's (offset,
//! len) pieces for one collective call, it produces per-aggregator
//! contiguous chunks.

use mif_alloc::StreamId;

/// One rank's contribution to a collective write: (logical block, blocks).
pub type Piece = (u64, u64);

/// Aggregate the pieces of one collective call.
///
/// Returns `(aggregator, offset, len)` chunks: the union of all pieces,
/// coalesced into maximal contiguous ranges, then cut into `chunk_blocks`
/// units handed round-robin to `aggregators` (MPI-IO `cb_nodes` analogue).
pub fn aggregate_collective(
    pieces: &[Piece],
    aggregators: &[StreamId],
    chunk_blocks: u64,
) -> Vec<(StreamId, u64, u64)> {
    assert!(!aggregators.is_empty() && chunk_blocks > 0);
    // Coalesce the union of pieces.
    let mut sorted: Vec<Piece> = pieces.to_vec();
    sorted.sort_unstable();
    let mut ranges: Vec<Piece> = Vec::new();
    for (off, len) in sorted {
        if len == 0 {
            continue;
        }
        match ranges.last_mut() {
            Some((s, l)) if *s + *l >= off => {
                // Overlapping or adjacent pieces merge.
                let end = (*s + *l).max(off + len);
                *l = end - *s;
            }
            _ => ranges.push((off, len)),
        }
    }
    // Cut into file-domain chunks, round-robin over aggregators.
    let mut out = Vec::new();
    let mut agg = 0usize;
    for (off, len) in ranges {
        let mut pos = off;
        let end = off + len;
        while pos < end {
            let take = chunk_blocks.min(end - pos);
            out.push((aggregators[agg % aggregators.len()], pos, take));
            agg += 1;
            pos += take;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aggs(n: u32) -> Vec<StreamId> {
        (0..n).map(|i| StreamId::new(i, 0)).collect()
    }

    #[test]
    fn interleaved_pieces_become_one_range() {
        // 4 ranks, strided 1-block pieces covering 0..16.
        let mut pieces = Vec::new();
        for round in 0..4u64 {
            for rank in 0..4u64 {
                pieces.push((round * 4 + rank, 1));
            }
        }
        let chunks = aggregate_collective(&pieces, &aggs(1), 1024);
        assert_eq!(chunks.len(), 1);
        assert_eq!((chunks[0].1, chunks[0].2), (0, 16));
    }

    #[test]
    fn chunking_respects_cap_and_round_robins() {
        let pieces = vec![(0u64, 100u64)];
        let a = aggs(2);
        let chunks = aggregate_collective(&pieces, &a, 40);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], (a[0], 0, 40));
        assert_eq!(chunks[1], (a[1], 40, 40));
        assert_eq!(chunks[2], (a[0], 80, 20));
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let pieces = vec![(0u64, 4u64), (100, 4)];
        let chunks = aggregate_collective(&pieces, &aggs(1), 1024);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn overlapping_pieces_merge() {
        let pieces = vec![(0u64, 6u64), (4, 6)];
        let chunks = aggregate_collective(&pieces, &aggs(1), 1024);
        assert_eq!(chunks.len(), 1);
        assert_eq!((chunks[0].1, chunks[0].2), (0, 10));
    }

    #[test]
    fn total_blocks_preserved_for_disjoint_input() {
        let pieces: Vec<Piece> = (0..64).map(|i| (i * 7, 3)).collect();
        let chunks = aggregate_collective(&pieces, &aggs(4), 16);
        let total: u64 = chunks.iter().map(|c| c.2).sum();
        assert_eq!(total, 64 * 3);
    }

    #[test]
    fn empty_pieces_are_ignored() {
        let chunks = aggregate_collective(&[(5, 0), (0, 2)], &aggs(1), 8);
        assert_eq!(chunks, vec![(StreamId::new(0, 0), 0, 2)]);
    }
}
