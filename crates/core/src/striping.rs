//! File striping across IO servers.
//!
//! Round-robin striping, the layout used by both Lustre and Redbud: file
//! logical blocks are cut into stripe units distributed cyclically over the
//! OSTs. Each OST sees a dense local block space for the file (stripe k of
//! an OST lands at local offset `k * stripe_blocks`).

/// Striping geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Striping {
    /// Number of IO servers (disks) the file system stripes over.
    pub osts: u32,
    /// Stripe unit in blocks.
    pub stripe_blocks: u64,
}

impl Striping {
    pub fn new(osts: u32, stripe_blocks: u64) -> Self {
        assert!(osts > 0 && stripe_blocks > 0);
        Self {
            osts,
            stripe_blocks,
        }
    }

    /// Map a file logical block to `(ost, ost-local logical block)`.
    /// `shift` rotates the starting OST — parallel file systems start each
    /// file on a different server so concurrent per-process files don't
    /// convoy on one disk.
    pub fn locate(&self, logical: u64, shift: u32) -> (u32, u64) {
        let stripe = logical / self.stripe_blocks;
        let within = logical % self.stripe_blocks;
        let ost = ((stripe + shift as u64) % self.osts as u64) as u32;
        let local_stripe = stripe / self.osts as u64;
        (ost, local_stripe * self.stripe_blocks + within)
    }

    /// Inverse of [`Self::locate`]: map an `(ost, ost-local logical
    /// block)` pair back to the file logical block. The checker uses this
    /// to reconstruct file-global facts (e.g. the written extent of a
    /// file) from the per-OST extent trees alone.
    pub fn global_of(&self, ost: u32, local: u64, shift: u32) -> u64 {
        let local_stripe = local / self.stripe_blocks;
        let within = local % self.stripe_blocks;
        // locate() computed: ost = (stripe + shift) % osts and
        // local_stripe = stripe / osts, so stripe recovers as below.
        let lane =
            (ost as u64 + self.osts as u64 - shift as u64 % self.osts as u64) % self.osts as u64;
        let stripe = local_stripe * self.osts as u64 + lane;
        stripe * self.stripe_blocks + within
    }

    /// Split a logical range `[logical, logical+len)` into per-OST dense
    /// runs: `(ost, local_start, run_len, file_logical_start)`.
    pub fn split(&self, logical: u64, len: u64, shift: u32) -> Vec<(u32, u64, u64, u64)> {
        let mut out = Vec::new();
        let mut pos = logical;
        let end = logical + len;
        while pos < end {
            let (ost, local) = self.locate(pos, shift);
            // Run to the end of this stripe unit.
            let unit_end = (pos / self.stripe_blocks + 1) * self.stripe_blocks;
            let run = unit_end.min(end) - pos;
            // Coalesce with the previous entry when it continues the same
            // OST-local range (single-OST configs, or len < stripe).
            match out.last_mut() {
                Some((o, s, l, _)) if *o == ost && *s + *l == local => *l += run,
                _ => out.push((ost, local, run, pos)),
            }
            pos += run;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_over_osts() {
        let s = Striping::new(4, 16);
        assert_eq!(s.locate(0, 0), (0, 0));
        assert_eq!(s.locate(16, 0), (1, 0));
        assert_eq!(s.locate(32, 0), (2, 0));
        assert_eq!(s.locate(48, 0), (3, 0));
        assert_eq!(s.locate(64, 0), (0, 16));
    }

    #[test]
    fn shift_rotates_starting_ost() {
        let s = Striping::new(4, 16);
        assert_eq!(s.locate(0, 1), (1, 0));
        assert_eq!(s.locate(16, 1), (2, 0));
        assert_eq!(s.locate(48, 1), (0, 0));
        // Local offsets are unaffected by the shift.
        assert_eq!(s.locate(64, 1).1, 16);
    }

    #[test]
    fn within_stripe_offsets_preserved() {
        let s = Striping::new(4, 16);
        assert_eq!(s.locate(17, 0), (1, 1));
        assert_eq!(s.locate(79, 0), (0, 31));
    }

    #[test]
    fn split_respects_stripe_boundaries() {
        let s = Striping::new(2, 4);
        // Blocks 2..10: [2,3]→ost0, [4..8)→ost1, [8,9]→ost0 local 4..6.
        let runs = s.split(2, 8, 0);
        assert_eq!(runs, vec![(0, 2, 2, 2), (1, 0, 4, 4), (0, 4, 2, 8)]);
    }

    #[test]
    fn split_coalesces_on_single_ost() {
        let s = Striping::new(1, 4);
        let runs = s.split(0, 64, 0);
        assert_eq!(runs, vec![(0, 0, 64, 0)]);
    }

    #[test]
    fn split_total_len_is_preserved() {
        let s = Striping::new(5, 16);
        for shift in [0u32, 2, 4] {
            for (logical, len) in [(0u64, 1u64), (7, 100), (1000, 4096), (5, 15)] {
                let total: u64 = s.split(logical, len, shift).iter().map(|r| r.2).sum();
                assert_eq!(total, len);
            }
        }
    }

    #[test]
    fn global_of_inverts_locate() {
        for osts in [1u32, 2, 3, 5] {
            let s = Striping::new(osts, 16);
            for shift in 0..osts + 2 {
                for logical in (0u64..2000).step_by(7) {
                    let (ost, local) = s.locate(logical, shift);
                    assert_eq!(
                        s.global_of(ost, local, shift),
                        logical,
                        "osts {osts} shift {shift} logical {logical}"
                    );
                }
            }
        }
    }

    #[test]
    fn ost_local_space_is_dense() {
        // Sequential stripes on one OST land back-to-back locally.
        let s = Striping::new(4, 16);
        assert_eq!(s.locate(0, 0).1, 0);
        assert_eq!(s.locate(64, 0).1, 16);
        assert_eq!(s.locate(128, 0).1, 32);
    }
}
