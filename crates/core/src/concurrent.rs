//! The concurrent multi-client front-end.
//!
//! [`FileSystem`] models concurrency with *rounds*: one caller drives every
//! stream serially and allocation order stands in for arrival order. That
//! reproduces the paper's figures, but the allocator's per-stream windows
//! are never exercised under real thread interleaving. [`ConcurrentFs`]
//! closes that gap: it owns the same state as the engine, sharded behind
//! fine-grained locks, so genuinely parallel client threads create, write,
//! read and close files through a shared `&ConcurrentFs`.
//!
//! # Sharding map
//!
//! * **per OST** ([`OstShard`]): the parallel-allocation-group allocator
//!   (already internally locked per group), the allocation-policy state
//!   (windows, goals) behind one short mutex, the pending/write-back IO
//!   queues, and the simulated disk behind its own mutex;
//! * **per file**: name/ino/shift are immutable in an `Arc`ed slot; extent
//!   trees, size, handle count, delayed-allocation buffers and the
//!   per-stream [`BumpWindow`] cache live behind the slot's mutex —
//!   writers to *different* files never contend;
//! * **MDS**: a striped lock table ([`mif_mds::Mds::name_stripe`]) guards
//!   the directory paths, so namespace operations on different names run
//!   concurrently while same-name races serialize; the `Mds` object itself
//!   is one short inner lock;
//! * **data-path WAL** ([`GroupCommitWal`]): records stage lock-free into
//!   a circular slab; one leader coalesces everything staged into a
//!   single merged flush (see `docs/CONCURRENCY.md` § group commit).
//!   `FsConfig::group_commit = false` restores the PR-5 baseline of one
//!   flush per record;
//! * **power state**: each shard mirrors its disk's powered-off flag in
//!   a lock-free `AtomicBool`, refreshed wherever the disk lock is held,
//!   so the write hot path never sweeps disk mutexes just to notice a
//!   power cut;
//! * **counters**: next-file id, write-back watermark, MDS CPU time,
//!   the aggregated disk statistics ([`SharedDiskStats`]) and the
//!   contention telemetry ([`ContentionSnapshot`]) are lock-free
//!   atomics feeding [`crate::metrics`] and `BENCH 6`.
//!
//! # Lock order
//!
//! Deadlock freedom comes from the global rank discipline documented in
//! [`mif_alloc::lockorder`] (`group < file < mds-journal < wal-flush`,
//! inner to outer): every path acquires locks in strictly descending
//! rank, and the WAL flush mutex — the outermost rank — is only ever
//! taken with no other lock held. Debug builds enforce this with the
//! panic-on-inversion checker; release builds compile the checks out.
//! See `docs/CONCURRENCY.md` for the full map.
//!
//! # Time and quiescing
//!
//! There are no rounds here. Writes buffer in per-OST write-back queues and
//! flush when the configured watermark is crossed (or at [`sync`]); each
//! shard accumulates its own simulated busy time and the data clock is
//! gated by the busiest shard, exactly like a [`DiskArray`] round. Tools
//! that need the whole-system view — fsck, the defrag engine, the oracle
//! checkers — run against the single-threaded engine: [`into_engine`]
//! quiesces, reassembles and hands back a plain [`FileSystem`] (and
//! [`from_engine`] goes the other way), so every existing hook keeps
//! working unchanged.
//!
//! [`sync`]: ConcurrentFs::sync
//! [`into_engine`]: ConcurrentFs::into_engine
//! [`from_engine`]: ConcurrentFs::from_engine
//!
//! # Example
//!
//! ```
//! use mif_core::{ConcurrentFs, FsConfig};
//! use mif_alloc::{PolicyKind, StreamId};
//! use std::sync::Arc;
//!
//! let fs = Arc::new(ConcurrentFs::new(FsConfig::with_policy(
//!     PolicyKind::OnDemand,
//!     2,
//! )));
//! let file = fs.create("shared.out", None);
//!
//! // Two real threads extend disjoint regions of the shared file.
//! std::thread::scope(|s| {
//!     for t in 0..2u32 {
//!         let fs = Arc::clone(&fs);
//!         s.spawn(move || {
//!             let stream = StreamId::new(t, 0);
//!             for i in 0..8u64 {
//!                 fs.write(file, stream, t as u64 * 4096 + i * 4, 4);
//!             }
//!         });
//!     }
//! });
//! fs.sync();
//! assert_eq!(fs.file_allocated(file), 64);
//!
//! // Quiesce into the single-threaded engine for fsck/defrag/oracles.
//! let fs = Arc::try_unwrap(fs).ok().expect("threads joined");
//! let engine = fs.into_engine();
//! assert_eq!(engine.file_allocated(file), 64);
//! ```

use crate::config::FsConfig;
use crate::fs::{EngineParts, FileState, FileSystem, LifecycleStats, OpenFile, Ost};
use crate::metrics::FsMetrics;
use crate::striping::Striping;
use crate::tier::{DegradedSource, TierMap};
use mif_alloc::lockorder::{self, LockClass};
use mif_alloc::{AllocPolicy, BumpWindow, FileId, GroupedAllocator, PolicyKind, StreamId};
use mif_extent::{Extent, ExtentTree};
use mif_mds::{encode_write_record, GroupCommitWal, InodeNo, Mds, ShardMap, WriteCommit, ROOT_INO};
use mif_simdisk::{
    BlockRequest, Disk, DiskArray, DiskHealth, DiskStats, FaultPlan, FaultStats, IoFault, Nanos,
    SharedDiskStats,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Stripes in the MDS namespace lock table.
const MDS_STRIPES: usize = 16;

/// IO accumulated toward one OST between flushes.
#[derive(Default)]
struct OstQueues {
    /// Read requests (serviced at the next flush, like a round's batch).
    pending: Vec<BlockRequest>,
    /// Dirty write-back data.
    writeback: Vec<BlockRequest>,
}

/// One IO server's shard of the mutable state.
struct OstShard {
    /// Parallel allocation groups — internally one lock per group, so
    /// streams hitting different groups allocate concurrently.
    alloc: GroupedAllocator,
    /// Policy window state. Held only around `create`/`extend`/`finalize`
    /// decisions, never around disk IO.
    policy: Mutex<Box<dyn AllocPolicy>>,
    queues: Mutex<OstQueues>,
    disk: Mutex<Disk>,
    /// Lock-free mirror of `disk.powered_off()`, refreshed whenever the
    /// disk lock is held and power state may have changed. The write hot
    /// path reads this instead of sweeping every shard's disk lock —
    /// the single hottest serialization point of the PR-5 front-end
    /// (`osts` lock acquisitions per write).
    powered_off: AtomicBool,
    /// Lock-free mirror of the bay's [`DiskHealth`] (stored as the enum's
    /// `u8` discriminant). The write hot path reads this instead of a
    /// `failed`/`degraded` flag pair: `Failed` fails writes and uncovered
    /// reads, `Failed | Rebuilding` routes reads through redundancy, and
    /// only `Healthy` accepts new placements. The authoritative state
    /// lives here while the front-end owns the system; transitions are
    /// validated through [`DiskHealth::can_transition`].
    health: AtomicU8,
    /// Read blocks routed to this shard (primary or replica) — the
    /// least-loaded fan-out signal.
    routed_blocks: AtomicU64,
    /// Simulated busy time this shard accumulated under the front-end.
    elapsed_ns: AtomicU64,
}

/// Mutable per-file state, guarded by the slot's mutex.
struct FileInner {
    /// The file's name under the root. Mutable: [`ConcurrentFs::rename_file`]
    /// rewrites it while holding both affected namespace stripe guards, so
    /// readers that only hold the slot mutex may see the name change between
    /// two locks but never a torn value.
    name: String,
    /// Inode number — embedded mode re-composes it on rename (§IV-B), so it
    /// lives with the name under the same lock.
    ino: InodeNo,
    trees: Vec<ExtentTree>,
    size_blocks: u64,
    open_handles: u32,
    /// Delayed-allocation buffers, one per stripe column: unmapped logical
    /// ranges awaiting coalesced allocation at flush time.
    delayed: Vec<Vec<(u64, u64)>>,
    /// Cached per-(column, stream) bump-window handles. The write path claims
    /// from these lock-free ([`BumpWindow::claim`]); only a failed claim
    /// (window spent, closed, or non-sequential offset) falls back to the
    /// policy mutex, which reserves fresh windows and re-primes the cache.
    /// Stale handles are harmless: a closed window refuses every claim.
    windows: Vec<HashMap<StreamId, Arc<BumpWindow>>>,
}

/// Lock-free tallies of how often the front-end's serialization points
/// are actually exercised (the `BENCH 6` reduced-contention evidence).
#[derive(Default)]
struct ContentionCounters {
    write_ops: AtomicU64,
    disk_locks: AtomicU64,
    lockfree_claims: AtomicU64,
    policy_extends: AtomicU64,
    writeback_batches: AtomicU64,
    writeback_requests: AtomicU64,
}

/// Snapshot of the front-end's contention counters. Single-core CI cannot
/// show wall-clock scaling, so `BENCH 6` proves the lock-free paths by
/// their effect instead: with group commit on, `disk_lock_acquisitions`
/// and `wal_flushes` per write op drop by well over 4x against the
/// `group_commit = false` baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionSnapshot {
    /// Write operations issued through [`ConcurrentFs::write`]/`try_write`.
    pub write_ops: u64,
    /// Times any path locked a shard's disk mutex.
    pub disk_lock_acquisitions: u64,
    /// Window claims satisfied lock-free on the write path.
    pub lockfree_window_claims: u64,
    /// Allocations that took the per-OST policy mutex.
    pub locked_policy_extends: u64,
    /// Write-back batches submitted (one disk-lock hold each).
    pub writeback_batches: u64,
    /// Individual requests inside those batches.
    pub writeback_requests: u64,
    /// Records staged in the data-path WAL.
    pub wal_records: u64,
    /// Merged journal flushes (== `wal_records` when `group_commit` is
    /// off: every record pays its own flush).
    pub wal_flushes: u64,
    /// Largest number of records one flush coalesced.
    pub wal_max_batch: u64,
    /// Appender parks caused by a full WAL slab (backpressure events).
    pub wal_backpressure_parks: u64,
}

/// The front-end's aggregated statistics: every lock-free counter the
/// system exports, in one snapshot. Call sites that used to pick per-field
/// accessors (`contention()` here, `data_stats()` there) read this instead,
/// so a bench or service layer reports the whole picture atomically enough
/// for evidence purposes — one struct, one code path.
#[derive(Debug, Clone)]
pub struct FsStats {
    /// Serialization-point tallies (the `BENCH 6` contention evidence).
    pub contention: ContentionSnapshot,
    /// Aggregated data-disk IO totals ([`SharedDiskStats`] snapshot).
    pub io: DiskStats,
    /// Per-file extent-count histogram, log2 buckets: `extent_hist[i]`
    /// counts files whose total extent count (summed across OSTs) lies in
    /// `[2^i, 2^(i+1))`; the last bucket absorbs everything above. Files
    /// with no extents are not counted. The fragmentation shape of the
    /// namespace at a glance — a healthy defragmented system keeps mass
    /// in the low buckets.
    pub extent_hist: [u64; 16],
    /// Per-bay health states, indexed by physical OST.
    pub health: Vec<DiskHealth>,
    /// Lifecycle counters: rebuilds, drains, additions, scrub progress.
    pub lifecycle: LifecycleStats,
}

impl FsStats {
    /// Files counted by the extent histogram.
    pub fn hist_files(&self) -> u64 {
        self.extent_hist.iter().sum()
    }

    /// Render the histogram as `1:12 2-3:4 ...`, skipping empty buckets.
    pub fn hist_display(&self) -> String {
        let mut out = String::new();
        for (i, &n) in self.extent_hist.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            let lo = 1u64 << i;
            let hi = (1u64 << (i + 1)) - 1;
            if i == 15 {
                out.push_str(&format!("{lo}+:{n}"));
            } else if lo == hi {
                out.push_str(&format!("{lo}:{n}"));
            } else {
                out.push_str(&format!("{lo}-{hi}:{n}"));
            }
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }

    /// Render the fleet's bay states: `N bays all-healthy` when nothing
    /// is wrong, else `0:healthy 1:rebuilding 2:absent ...`.
    pub fn health_display(&self) -> String {
        if self.health.iter().all(|&h| h == DiskHealth::Healthy) {
            return format!("{} bays all-healthy", self.health.len());
        }
        self.health
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{i}:{h}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One file: immutable identity plus locked mutable state.
struct FileSlot {
    id: FileId,
    ost_shift: u32,
    /// Stripe column → physical OST hosting it (see [`FileState::ost_map`]
    /// in the engine). Immutable under the front-end: drains — the only
    /// operation that rewrites the map — run against the quiesced serial
    /// engine, never under concurrent clients.
    ost_map: Vec<u32>,
    /// Lock-free access recorder: read ops since the last drain. The heat
    /// classifier (`mif-tier`) consumes these as deltas.
    reads: AtomicU64,
    /// Write ops since the last drain.
    writes: AtomicU64,
    inner: Mutex<FileInner>,
}

impl FileSlot {
    /// The file's stripe geometry: width = this file's column count.
    fn striping(&self, stripe_blocks: u64) -> Striping {
        Striping::new(self.ost_map.len() as u32, stripe_blocks)
    }

    /// Physical OST (shard index) currently hosting stripe column `col`.
    fn phys(&self, col: usize) -> usize {
        self.ost_map[col] as usize
    }
}

/// A thread-safe front-end over the core file system: the same semantics
/// as [`FileSystem`], shared by reference across client threads.
pub struct ConcurrentFs {
    pub config: FsConfig,
    shards: Vec<OstShard>,
    mds: Mutex<Mds>,
    mds_stripes: Vec<Mutex<()>>,
    files: RwLock<HashMap<FileId, Arc<FileSlot>>>,
    /// Files with non-empty delayed buffers (drained at flush).
    delayed_dirty: Mutex<HashSet<FileId>>,
    next_file: AtomicU64,
    writeback_blocks: AtomicU64,
    mds_cpu_ns: AtomicU64,
    /// Data-clock time inherited from the engine at construction.
    base_elapsed_ns: Nanos,
    /// Lock-free aggregate of every batch submitted through this front-end
    /// (seeded with the engine's totals at construction).
    io: SharedDiskStats,
    /// The group-commit data-path WAL: one durable-intent record per write
    /// op, staged lock-free, flushed merged (see [`mif_mds::GroupCommitWal`]).
    wal: GroupCommitWal,
    /// The tier map (replicas, stripe groups): read-shared on the data
    /// path, exclusive for invalidation and registration. Lock rank
    /// [`LockClass::Tier`] — outside `File`, inside `FileMap`.
    tier: RwLock<TierMap>,
    /// Lifecycle counters (rebuilds, additions, scrub tallies), inherited
    /// from the engine and handed back at quiesce. Maintenance-path only:
    /// taken with no other lock held, never on the data hot path.
    lifecycle: Mutex<LifecycleStats>,
    contention: ContentionCounters,
}

impl ConcurrentFs {
    /// A fresh file system ready for parallel clients.
    pub fn new(config: FsConfig) -> Self {
        Self::from_engine(FileSystem::new(config))
    }

    /// Shard a quiesced single-threaded engine. Panics if the engine has
    /// an open round.
    pub fn from_engine(fs: FileSystem) -> Self {
        let parts = fs.into_parts();
        let io = SharedDiskStats::default();
        let disks = parts.array.into_disks();
        let shards: Vec<OstShard> = parts
            .osts
            .into_iter()
            .zip(disks)
            .zip(&parts.health)
            .map(|((ost, disk), &health)| {
                io.add(disk.stats());
                OstShard {
                    alloc: ost.alloc,
                    policy: Mutex::new(ost.policy),
                    queues: Mutex::new(OstQueues::default()),
                    powered_off: AtomicBool::new(disk.powered_off()),
                    health: AtomicU8::new(health as u8),
                    routed_blocks: AtomicU64::new(0),
                    disk: Mutex::new(disk),
                    elapsed_ns: AtomicU64::new(0),
                }
            })
            .collect();
        let files = parts
            .files
            .into_iter()
            .map(|(id, f)| {
                let width = f.trees.len();
                (
                    id,
                    Arc::new(FileSlot {
                        id,
                        ost_shift: f.ost_shift,
                        ost_map: f.ost_map,
                        reads: AtomicU64::new(0),
                        writes: AtomicU64::new(0),
                        inner: Mutex::new(FileInner {
                            name: f.name,
                            ino: f.ino,
                            trees: f.trees,
                            size_blocks: f.size_blocks,
                            open_handles: f.open_handles,
                            delayed: vec![Vec::new(); width],
                            windows: vec![HashMap::new(); width],
                        }),
                    }),
                )
            })
            .collect();
        Self {
            shards,
            mds: Mutex::new(parts.mds),
            mds_stripes: (0..MDS_STRIPES).map(|_| Mutex::new(())).collect(),
            files: RwLock::new(files),
            delayed_dirty: Mutex::new(HashSet::new()),
            next_file: AtomicU64::new(parts.next_file),
            writeback_blocks: AtomicU64::new(0),
            mds_cpu_ns: AtomicU64::new(parts.mds_cpu_ns),
            base_elapsed_ns: parts.data_elapsed_ns,
            io,
            wal: GroupCommitWal::new(parts.config.wal_slab_records),
            tier: RwLock::new(parts.tier),
            lifecycle: Mutex::new(parts.lifecycle),
            contention: ContentionCounters::default(),
            config: parts.config,
        }
    }

    /// Quiesce and reassemble the single-threaded engine: flush all dirty
    /// state, unwrap every shard, and hand the whole system back for
    /// fsck, defrag, oracle checks or further serial driving. The caller
    /// must hold the only reference (all client threads joined).
    pub fn into_engine(self) -> FileSystem {
        self.sync();
        let ConcurrentFs {
            config,
            shards,
            mds,
            files,
            next_file,
            mds_cpu_ns,
            base_elapsed_ns,
            tier,
            lifecycle,
            ..
        } = self;
        let mut disks = Vec::with_capacity(shards.len());
        let mut osts = Vec::with_capacity(shards.len());
        let mut health = Vec::with_capacity(shards.len());
        let mut busiest: Nanos = 0;
        for shard in shards {
            busiest = busiest.max(shard.elapsed_ns.into_inner());
            health.push(DiskHealth::from_u8(shard.health.into_inner()));
            disks.push(shard.disk.into_inner().unwrap());
            osts.push(Ost {
                alloc: shard.alloc,
                policy: shard.policy.into_inner().unwrap(),
            });
        }
        let files = files
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|(id, slot)| {
                let slot = Arc::try_unwrap(slot)
                    .ok()
                    .expect("file slot still referenced at quiesce");
                let inner = slot.inner.into_inner().unwrap();
                (
                    id,
                    FileState {
                        name: inner.name,
                        ino: inner.ino,
                        trees: inner.trees,
                        size_blocks: inner.size_blocks,
                        ost_shift: slot.ost_shift,
                        ost_map: slot.ost_map,
                        open_handles: inner.open_handles,
                    },
                )
            })
            .collect();
        FileSystem::from_parts(EngineParts {
            array: DiskArray::from_disks(disks),
            osts,
            mds: mds.into_inner().unwrap(),
            files,
            next_file: next_file.into_inner(),
            tier: tier.into_inner().unwrap(),
            health,
            lifecycle: lifecycle.into_inner().unwrap(),
            data_elapsed_ns: base_elapsed_ns + busiest,
            mds_cpu_ns: mds_cpu_ns.into_inner(),
            config,
        })
    }

    fn slot(&self, file: OpenFile) -> Option<Arc<FileSlot>> {
        let _order = lockorder::acquire(LockClass::FileMap);
        self.files.read().unwrap().get(&file.0).cloned()
    }

    /// The namespace stripe guarding `name`, after shard routing. With
    /// `mds_shards <= 1` the whole table is one flat hash space; with more,
    /// the table is partitioned into per-shard regions and the name first
    /// routes through the same stable [`ShardMap`] placement the sharded
    /// MDS uses (dir 0 = the root), then hashes within its region — so
    /// operations on names homed on different shards can never collide on
    /// a stripe.
    fn stripe_index(&self, name: &str) -> usize {
        let stripes = self.mds_stripes.len();
        let shards = self.config.mds_shards.max(1);
        if shards <= 1 {
            return Mds::name_stripe(ROOT_INO, name, stripes);
        }
        let per = (stripes / shards).max(1);
        let regions = stripes / per;
        let base = (ShardMap::new(shards).shard_of_entry(0, name) % regions) * per;
        base + Mds::name_stripe(ROOT_INO, name, per)
    }

    fn stripe_guard(&self, name: &str) -> (lockorder::LockToken, std::sync::MutexGuard<'_, ()>) {
        let idx = self.stripe_index(name);
        let token = lockorder::acquire_indexed(LockClass::MdsStripe, idx);
        (token, self.mds_stripes[idx].lock().unwrap())
    }

    // ----- lifecycle ------------------------------------------------------

    /// Create a file under the root directory (see [`FileSystem::create`]).
    /// The file stripes over the bays currently accepting placements —
    /// draining, rebuilding, failed and absent bays are excluded from its
    /// `ost_map` for life.
    pub fn create(&self, name: &str, size_hint_blocks: Option<u64>) -> OpenFile {
        let id = FileId(self.next_file.fetch_add(1, Ordering::Relaxed));
        let ost_map = self.active_osts();
        assert!(
            !ost_map.is_empty(),
            "create with no OST accepting placements"
        );
        let width = ost_map.len();
        let per_ost_hint = size_hint_blocks.map(|s| s.div_ceil(width as u64));
        let _stripe = self.stripe_guard(name);
        let ino = {
            let _order = lockorder::acquire(LockClass::MdsJournal);
            self.mds.lock().unwrap().create(ROOT_INO, name, 0)
        };
        for &phys in &ost_map {
            let shard = &self.shards[phys as usize];
            let _order = lockorder::acquire(LockClass::Policy);
            shard
                .policy
                .lock()
                .unwrap()
                .create(&shard.alloc, id, per_ost_hint);
        }
        let mut trees: Vec<ExtentTree> = (0..width).map(|_| ExtentTree::new()).collect();
        // fallocate semantics, as in the engine: static preallocation maps
        // the whole hinted range up front.
        if self.config.policy == PolicyKind::Static {
            if let Some(hint) = per_ost_hint {
                let stream = StreamId::new(u32::MAX, u32::MAX);
                for (&phys, tree) in ost_map.iter().zip(&mut trees) {
                    let shard = &self.shards[phys as usize];
                    let _order = lockorder::acquire(LockClass::Policy);
                    let mut policy = shard.policy.lock().unwrap();
                    let mut logical = 0;
                    for (phys, l) in policy.extend(&shard.alloc, id, stream, 0, hint) {
                        tree.insert(Extent::new(logical, phys, l));
                        logical += l;
                    }
                }
            }
        }
        let slot = Arc::new(FileSlot {
            id,
            ost_shift: (id.0 % width as u64) as u32,
            ost_map,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            inner: Mutex::new(FileInner {
                name: name.to_string(),
                ino,
                trees,
                size_blocks: 0,
                open_handles: 1,
                delayed: vec![Vec::new(); width],
                windows: vec![HashMap::new(); width],
            }),
        });
        {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files.write().unwrap().insert(id, slot);
        }
        OpenFile(id)
    }

    /// Open by name (aggregated open-getlayout, as in the engine).
    pub fn open(&self, name: &str) -> Option<OpenFile> {
        let _stripe = self.stripe_guard(name);
        let slot = {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files
                .read()
                .unwrap()
                .values()
                .find(|s| {
                    let _f = lockorder::acquire(LockClass::File);
                    let hit = s.inner.lock().unwrap().name == name;
                    hit
                })
                .cloned()
        }?;
        {
            let _order = lockorder::acquire(LockClass::MdsJournal);
            self.mds.lock().unwrap().getlayout(ROOT_INO, name);
        }
        let _order = lockorder::acquire(LockClass::File);
        slot.inner.lock().unwrap().open_handles += 1;
        Some(OpenFile(slot.id))
    }

    /// Close one handle; the last close finalizes policy windows on every
    /// OST (see [`FileSystem::close`]). A concurrent reopen racing the
    /// last close is the caller's serialization duty, exactly as with
    /// POSIX file descriptors.
    pub fn close(&self, file: OpenFile) {
        let Some(slot) = self.slot(file) else {
            return;
        };
        let last = {
            let _order = lockorder::acquire(LockClass::File);
            let mut inner = slot.inner.lock().unwrap();
            inner.open_handles = inner.open_handles.saturating_sub(1);
            inner.open_handles == 0
        };
        if last {
            for shard in &self.shards {
                let _order = lockorder::acquire(LockClass::Policy);
                shard.policy.lock().unwrap().finalize(&shard.alloc, file.0);
            }
        }
    }

    /// Live handles on `file` (0 after the last close or for unknown ids).
    pub fn open_handle_count(&self, file: OpenFile) -> u32 {
        let Some(slot) = self.slot(file) else {
            return 0;
        };
        let _order = lockorder::acquire(LockClass::File);
        let n = slot.inner.lock().unwrap().open_handles;
        n
    }

    /// Does any OST's policy still hold a live preallocation window for
    /// `file`? (The defrag scheduler's skip check.)
    pub fn has_live_preallocation(&self, file: OpenFile) -> bool {
        self.shards.iter().any(|shard| {
            let _order = lockorder::acquire(LockClass::Policy);
            let held = shard.policy.lock().unwrap().has_reservation(file.0);
            held
        })
    }

    /// Delete: flush, drop the namespace entry, free every block (see
    /// [`FileSystem::unlink`]). Concurrent writers to the dying file are
    /// the caller's serialization duty.
    pub fn unlink(&self, file: OpenFile) {
        self.sync();
        let Some(slot) = self.slot(file) else {
            return;
        };
        // Guard the stripe of the file's *current* name; a rename racing us
        // can move the name to another stripe between the read and the
        // guard, so re-validate under the guard and chase it.
        let (name, _stripe) = loop {
            let name = {
                let _f = lockorder::acquire(LockClass::File);
                let n = slot.inner.lock().unwrap().name.clone();
                n
            };
            let stripe = self.stripe_guard(&name);
            let unchanged = {
                let _f = lockorder::acquire(LockClass::File);
                let same = slot.inner.lock().unwrap().name == name;
                same
            };
            if unchanged {
                break (name, stripe);
            }
        };
        drop(slot);
        let slot = {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files.write().unwrap().remove(&file.0)
        };
        let Some(slot) = slot else {
            return; // lost the race to another unlink
        };
        {
            let _order = lockorder::acquire(LockClass::MdsJournal);
            self.mds.lock().unwrap().unlink(ROOT_INO, &name);
        }
        for shard in &self.shards {
            let _order = lockorder::acquire(LockClass::Policy);
            shard.policy.lock().unwrap().finalize(&shard.alloc, file.0);
        }
        {
            let _order = lockorder::acquire(LockClass::File);
            let mut inner = slot.inner.lock().unwrap();
            for (col, tree) in inner.trees.iter_mut().enumerate() {
                let shard = &self.shards[slot.phys(col)];
                for (phys, len) in tree.clear() {
                    shard.alloc.free(phys, len);
                    let _disk = lockorder::acquire(LockClass::Disk);
                    self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
                    shard.disk.lock().unwrap().invalidate(phys, len);
                }
            }
        }
        // Derived redundancy dies with the primary (see the engine's
        // `unlink`): free every replica/parity run, then forget them.
        let _order = lockorder::acquire(LockClass::Tier);
        let mut tier = self.tier.write().unwrap();
        for run in tier.runs_of_file(file.0 .0) {
            let shard = &self.shards[run.ost as usize];
            shard.alloc.free(run.phys, run.len);
            let _disk = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            shard.disk.lock().unwrap().invalidate(run.phys, run.len);
        }
        tier.drop_file(file.0 .0);
    }

    /// Rename an open file to `new_name` under the root. Returns the
    /// file's (possibly new) inode number, or `None` for an unknown file.
    ///
    /// Concurrency shape: both affected namespace stripes are held at once
    /// — acquired in ascending stripe-index order through
    /// [`mif_alloc::lockorder::acquire_indexed`], the same
    /// ascending-instance discipline the sharded MDS's cross-shard
    /// coordinator uses on its operation heads — so two opposing renames
    /// (`a→b` racing `b→a`) cannot deadlock, and create/open/unlink on
    /// either name serialize against the move. The source stripe is
    /// re-validated after acquisition: a concurrent rename may have moved
    /// the file to a name in a different stripe, in which case we chase it.
    pub fn rename_file(&self, file: OpenFile, new_name: &str) -> Option<InodeNo> {
        let slot = self.slot(file)?;
        loop {
            let old = {
                let _f = lockorder::acquire(LockClass::File);
                let n = slot.inner.lock().unwrap().name.clone();
                n
            };
            if old == new_name {
                let _f = lockorder::acquire(LockClass::File);
                let ino = slot.inner.lock().unwrap().ino;
                return Some(ino);
            }
            let (src, dst) = (self.stripe_index(&old), self.stripe_index(new_name));
            let (lo, hi) = (src.min(dst), src.max(dst));
            let _t_lo = lockorder::acquire_indexed(LockClass::MdsStripe, lo);
            let _g_lo = self.mds_stripes[lo].lock().unwrap();
            let mut _t_hi = None;
            let mut _g_hi = None;
            if hi != lo {
                _t_hi = Some(lockorder::acquire_indexed(LockClass::MdsStripe, hi));
                _g_hi = Some(self.mds_stripes[hi].lock().unwrap());
            }
            let unchanged = {
                let _f = lockorder::acquire(LockClass::File);
                let same = slot.inner.lock().unwrap().name == old;
                same
            };
            if !unchanged {
                continue; // lost a race to another rename; re-route
            }
            // Both stripes held and the source name validated: any other
            // rename of this file would need the `old` stripe we hold, so
            // the name is pinned from here on.
            let ino = {
                let _order = lockorder::acquire(LockClass::MdsJournal);
                let ino = self
                    .mds
                    .lock()
                    .unwrap()
                    .rename(ROOT_INO, &old, ROOT_INO, new_name);
                ino
            }?;
            let _f = lockorder::acquire(LockClass::File);
            let mut inner = slot.inner.lock().unwrap();
            inner.name = new_name.to_string();
            inner.ino = ino;
            return Some(ino);
        }
    }

    // ----- data path ------------------------------------------------------

    /// Write `len` blocks at `offset` on behalf of `stream`; allocation
    /// runs under the sharded locks, data buffers in the per-OST
    /// write-back queues (flushed past the watermark or at [`sync`]).
    ///
    /// [`sync`]: ConcurrentFs::sync
    pub fn write(&self, file: OpenFile, stream: StreamId, offset: u64, len: u64) {
        self.try_write(file, stream, offset, len)
            .unwrap_or_else(|(ost, f)| panic!("unhandled fault on OST {ost}: {f}"));
    }

    /// Fallible [`ConcurrentFs::write`]: a dead (powered-off) server fails
    /// the buffering immediately; other faults surface at flush time.
    pub fn try_write(
        &self,
        file: OpenFile,
        stream: StreamId,
        offset: u64,
        len: u64,
    ) -> Result<(), (usize, IoFault)> {
        self.try_write_journaled(file, stream, offset, len)
            .map(|_seq| ())
    }

    /// [`ConcurrentFs::try_write`] that also returns the WAL seqno of the
    /// write's durable-intent record. This is the `mif-server` entry
    /// point: the service layer stages many client writes, then gates the
    /// whole batch's acks on one [`wal_commit`] of the highest seqno —
    /// ack-implies-durable at group-commit cost. Under
    /// `group_commit = false` the record is already durable on return.
    ///
    /// [`wal_commit`]: ConcurrentFs::wal_commit
    pub fn try_write_journaled(
        &self,
        file: OpenFile,
        stream: StreamId,
        offset: u64,
        len: u64,
    ) -> Result<u64, (usize, IoFault)> {
        assert!(len > 0, "zero-length write");
        self.contention.write_ops.fetch_add(1, Ordering::Relaxed);
        if self.config.group_commit {
            // Lock-free liveness check against the atomic mirror; only a
            // hit (dead server — the cold path) touches a disk lock to
            // fetch the fault counter.
            for (i, shard) in self.shards.iter().enumerate() {
                if shard.powered_off.load(Ordering::Acquire) {
                    return Err((i, self.power_cut_fault(shard)));
                }
            }
        } else {
            // PR-5 baseline: sweep every shard's disk lock on every write.
            for (i, shard) in self.shards.iter().enumerate() {
                let _order = lockorder::acquire(LockClass::Disk);
                self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
                let disk = shard.disk.lock().unwrap();
                if disk.powered_off() {
                    let writes = disk
                        .fault_stats()
                        .map(|s| s.writes_seen)
                        .unwrap_or_default();
                    return Err((
                        i,
                        IoFault::PowerCut {
                            after_writes: writes,
                        },
                    ));
                }
            }
        }
        let slot = self.slot(file).expect("write to unknown file");
        slot.writes.fetch_add(1, Ordering::Relaxed);
        let striping = slot.striping(self.config.stripe_blocks);
        // A write cannot land on a dead disk; a replaced-but-rebuilding
        // (or draining) one accepts fresh data to columns it already hosts.
        for (col, ..) in striping.split(offset, len, slot.ost_shift) {
            let phys = slot.phys(col as usize);
            if self.ost_health(phys) == DiskHealth::Failed {
                return Err((phys, IoFault::DiskFailed));
            }
        }
        {
            let _order = lockorder::acquire(LockClass::File);
            let mut inner = slot.inner.lock().unwrap();
            self.write_locked(&slot, &mut inner, stream, offset, len);
        }
        // The content changed: any replica or stripe group derived from
        // the written spans is stale. Cheap lock-free-ish check first —
        // the write lock is only taken when something actually overlaps.
        {
            let _order = lockorder::acquire(LockClass::Tier);
            let overlaps = {
                let tier = self.tier.read().unwrap();
                !tier.is_empty()
                    && striping.split(offset, len, slot.ost_shift).into_iter().any(
                        |(col, local, run, _)| tier.has_valid_overlap(file.0 .0, col, local, run),
                    )
            };
            if overlaps {
                let mut tier = self.tier.write().unwrap();
                for (col, local, run, _) in striping.split(offset, len, slot.ost_shift) {
                    tier.invalidate_overlap(file.0 .0, col, local, run);
                }
            }
        }
        // Journal the write's durable intent. Staging is lock-free; under
        // group commit the record rides the next merged flush (a sync
        // acknowledges it), while the baseline pays one flush per record
        // — exactly the PR-5 journalling cost.
        let commit = WriteCommit {
            file: file.0 .0,
            stream: stream.as_u64(),
            offset,
            len,
        };
        let seq = self.wal.append(|seq| encode_write_record(seq, &commit));
        if !self.config.group_commit {
            self.wal.commit(seq);
        }
        if self.writeback_blocks.load(Ordering::Relaxed) >= self.config.writeback_limit_blocks {
            self.try_flush()?;
        }
        Ok(seq)
    }

    /// Build the power-cut fault report for a dead shard (cold path).
    fn power_cut_fault(&self, shard: &OstShard) -> IoFault {
        let _order = lockorder::acquire(LockClass::Disk);
        self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
        let disk = shard.disk.lock().unwrap();
        IoFault::PowerCut {
            after_writes: disk
                .fault_stats()
                .map(|s| s.writes_seen)
                .unwrap_or_default(),
        }
    }

    /// The write hot path, under this file's lock. Mirrors the engine's
    /// `write_inner`: delayed buffering, CoW relocation, hole allocation
    /// through the policy, then write-back queuing. The policy lock is
    /// scoped to the `extend` call — never held across queue or disk work.
    fn write_locked(
        &self,
        slot: &FileSlot,
        inner: &mut FileInner,
        stream: StreamId,
        offset: u64,
        len: u64,
    ) {
        let pieces = slot
            .striping(self.config.stripe_blocks)
            .split(offset, len, slot.ost_shift);
        let delayed = self.config.policy == PolicyKind::Delayed;
        for (col, local, run, _) in pieces {
            let col = col as usize;
            let phys = slot.phys(col);
            let shard = &self.shards[phys];

            if delayed {
                let mut buffered = 0u64;
                for (gap_start, gap_len) in inner.trees[col].gaps(local, run) {
                    inner.delayed[col].push((gap_start, gap_len));
                    buffered += gap_len;
                }
                if buffered > 0 {
                    self.writeback_blocks.fetch_add(buffered, Ordering::Relaxed);
                    let _order = lockorder::acquire(LockClass::OstQueue);
                    self.delayed_dirty.lock().unwrap().insert(slot.id);
                }
                self.queue_writes(phys, inner.trees[col].resolve(local, run));
                inner.size_blocks = inner.size_blocks.max(offset + len);
                continue;
            }

            if self.config.policy == PolicyKind::Cow {
                for (old_phys, old_len) in inner.trees[col].remove(local, run) {
                    shard.alloc.free(old_phys, old_len);
                    let _order = lockorder::acquire(LockClass::Disk);
                    self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
                    shard.disk.lock().unwrap().invalidate(old_phys, old_len);
                }
            }

            let mut cached = inner.windows[col].get(&stream).cloned();
            let tree = &mut inner.trees[col];
            for (gap_start, gap_len) in tree.gaps(local, run) {
                let before = tree.extent_count();
                let mut logical = gap_start;
                let end = gap_start + gap_len;
                while logical < end {
                    // Fast path: bump-claim from the cached window with one
                    // CAS — no policy lock. Consumption and the claim
                    // counter go through the same shared window the policy
                    // sees, so its trigger decisions are unchanged.
                    if self.config.group_commit {
                        if let Some((phys, l)) = cached
                            .as_ref()
                            .and_then(|w| w.claim(logical, end - logical))
                        {
                            self.contention
                                .lockfree_claims
                                .fetch_add(1, Ordering::Relaxed);
                            tree.insert(Extent::new(logical, phys, l));
                            logical += l;
                            continue;
                        }
                    }
                    // Slow path: the policy reserves fresh windows under
                    // its mutex; re-prime the cache with the new current
                    // window before the next iteration.
                    let runs = {
                        let _order = lockorder::acquire(LockClass::Policy);
                        let mut policy = shard.policy.lock().unwrap();
                        self.contention
                            .policy_extends
                            .fetch_add(1, Ordering::Relaxed);
                        let runs =
                            policy.extend(&shard.alloc, slot.id, stream, logical, end - logical);
                        cached = policy.stream_window(slot.id, stream);
                        runs
                    };
                    for (phys, l) in runs {
                        tree.insert(Extent::new(logical, phys, l));
                        logical += l;
                    }
                    debug_assert_eq!(logical, end, "policy short-allocated");
                }
                let added = tree.extent_count().saturating_sub(before) as u64;
                self.mds_cpu_ns
                    .fetch_add(added * self.config.mds_cpu_ns_per_extent, Ordering::Relaxed);
            }
            match cached {
                Some(w) => {
                    inner.windows[col].insert(stream, w);
                }
                None => {
                    inner.windows[col].remove(&stream);
                }
            }
            self.queue_writes(phys, inner.trees[col].resolve(local, run));
        }
        inner.size_blocks = inner.size_blocks.max(offset + len);
    }

    /// Queue resolved physical runs as dirty write-back data.
    fn queue_writes(&self, ost_idx: usize, runs: Vec<(u64, u64)>) {
        if runs.is_empty() {
            return;
        }
        let mut blocks = 0u64;
        {
            let _order = lockorder::acquire(LockClass::OstQueue);
            let mut queues = self.shards[ost_idx].queues.lock().unwrap();
            for (phys, l) in runs {
                queues.writeback.push(BlockRequest::write(phys, l));
                blocks += l;
            }
        }
        self.writeback_blocks.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Read `len` blocks at `offset` as `stream`; requests carry the same
    /// per-(stream, file) readahead context as the engine and are serviced
    /// at the next flush. Panics on an unservable read of a dead shard —
    /// see [`ConcurrentFs::try_read`].
    pub fn read(&self, file: OpenFile, stream: StreamId, offset: u64, len: u64) {
        self.try_read(file, stream, offset, len)
            .unwrap_or_else(|(ost, f)| panic!("unhandled fault on OST {ost}: {f}"));
    }

    /// Fallible [`ConcurrentFs::read`], tier-aware:
    ///
    /// * healthy shard with valid replicas covering a piece → the piece is
    ///   routed to the least-loaded copy (primary included) — the hot-read
    ///   fan-out;
    /// * failed shard → the piece *must* be served degraded, from a
    ///   covering replica or by reading [`crate::tier::STRIPE_DATA`]
    ///   surviving runs of its stripe group; an uncovered piece fails with
    ///   [`IoFault::DiskFailed`];
    /// * replaced-but-rebuilding shard → degraded routing where coverage
    ///   exists, direct reads otherwise (fresh data written after the
    ///   swap lives on the new disk).
    pub fn try_read(
        &self,
        file: OpenFile,
        stream: StreamId,
        offset: u64,
        len: u64,
    ) -> Result<(), (usize, IoFault)> {
        let ctx = stream.as_u64() ^ file.0 .0.rotate_left(17);
        let slot = self.slot(file).expect("read from unknown file");
        slot.reads.fetch_add(1, Ordering::Relaxed);
        let striping = slot.striping(self.config.stripe_blocks);
        let _tier_order = lockorder::acquire(LockClass::Tier);
        let tier = self.tier.read().unwrap();
        let _order = lockorder::acquire(LockClass::File);
        let inner = slot.inner.lock().unwrap();
        for (col, local, run, _) in striping.split(offset, len, slot.ost_shift) {
            let col = col as usize;
            let phys_ost = slot.phys(col);
            let shard = &self.shards[phys_ost];
            let health = self.ost_health(phys_ost);
            let failed = health == DiskHealth::Failed;
            let degraded = health.degraded();
            if degraded {
                match tier.degraded_source(
                    file.0 .0,
                    col as u32,
                    local,
                    run,
                    |c| slot.ost_map[c as usize],
                    |o| self.ost_healthy(o),
                ) {
                    Some(DegradedSource::Replica { ost, phys, len }) => {
                        self.queue_read(ost as usize, phys, len, ctx);
                        continue;
                    }
                    Some(DegradedSource::Stripe { unit, reads, .. }) => {
                        for (rost, start, parity) in reads {
                            if parity {
                                // Parity runs live at physical addresses.
                                self.queue_read(rost as usize, start, unit, ctx);
                            } else {
                                // A surviving data member (a stripe column
                                // of this same file): its extents resolve
                                // under this lock; the IO goes to the bay
                                // hosting that column.
                                for (phys, l) in inner.trees[rost as usize].resolve(start, unit) {
                                    self.queue_read(slot.phys(rost as usize), phys, l, ctx);
                                }
                            }
                        }
                        continue;
                    }
                    None if failed => return Err((phys_ost, IoFault::DiskFailed)),
                    None => {} // rebuilding: direct read below
                }
            }
            let resolved = inner.trees[col].resolve(local, run);
            if resolved.is_empty() {
                continue;
            }
            if !degraded {
                // Hot-read fan-out: route the whole piece to the
                // least-loaded valid copy, primary included.
                let replicas = tier
                    .replicas_covering(file.0 .0, col as u32, local, run, |o| self.ost_healthy(o));
                if !replicas.is_empty() {
                    let mut best: Option<(&crate::tier::ReplicaRun, u64)> = None;
                    for r in replicas {
                        let load = self.shards[r.dst_ost as usize]
                            .routed_blocks
                            .load(Ordering::Relaxed);
                        if best.as_ref().is_none_or(|&(_, b)| load < b) {
                            best = Some((r, load));
                        }
                    }
                    let primary_load = shard.routed_blocks.load(Ordering::Relaxed);
                    if let Some((r, load)) = best {
                        if load < primary_load {
                            let phys = r.dst_phys + (local - r.logical);
                            self.queue_read(r.dst_ost as usize, phys, run, ctx);
                            continue;
                        }
                    }
                }
            }
            for (phys, l) in resolved {
                self.queue_read(phys_ost, phys, l, ctx);
            }
        }
        Ok(())
    }

    /// Queue one read request on a shard, charging the routed-load signal
    /// the fan-out uses.
    fn queue_read(&self, ost_idx: usize, phys: u64, len: u64, ctx: u64) {
        self.shards[ost_idx]
            .routed_blocks
            .fetch_add(len, Ordering::Relaxed);
        let _order = lockorder::acquire(LockClass::OstQueue);
        self.shards[ost_idx]
            .queues
            .lock()
            .unwrap()
            .pending
            .push(BlockRequest::read(phys, len).with_ctx(ctx));
    }

    /// Can `ost` (a physical bay) serve redundancy reads right now?
    /// A draining bay still serves its data; a failed, rebuilding or
    /// absent one cannot back a degraded read, and neither can a
    /// powered-off server.
    fn ost_healthy(&self, ost: u32) -> bool {
        let s = &self.shards[ost as usize];
        let h = DiskHealth::from_u8(s.health.load(Ordering::Acquire));
        h.serves_io() && !h.degraded() && !s.powered_off.load(Ordering::Acquire)
    }

    // ----- flushing -------------------------------------------------------

    /// Flush all queued IO to the disks (fsync analogue).
    pub fn sync(&self) {
        self.try_sync()
            .unwrap_or_else(|(ost, f)| panic!("unhandled fault on OST {ost}: {f}"));
    }

    /// Fallible [`ConcurrentFs::sync`]: the first fault is reported with
    /// its OST index; the surviving shards' IO has been serviced.
    pub fn try_sync(&self) -> Result<(), (usize, IoFault)> {
        self.try_flush()
    }

    /// Drain every shard's queues into its disk. Batches are taken under
    /// the queue lock, then submitted under the disk lock only — writes
    /// buffered by other threads during the flush simply wait for the
    /// next one.
    fn try_flush(&self) -> Result<(), (usize, IoFault)> {
        // Journal before data: every staged intent record becomes durable
        // in (at most) one merged flush before the write-back batches go
        // out. This is the group-commit coalescing point — under the
        // baseline each record already paid its own flush at append time.
        self.wal.commit_all();
        self.allocate_delayed();
        self.writeback_blocks.store(0, Ordering::Relaxed);
        let mut first_fault = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let batch = {
                let _order = lockorder::acquire(LockClass::OstQueue);
                let mut queues = shard.queues.lock().unwrap();
                let mut batch = std::mem::take(&mut queues.pending);
                batch.append(&mut queues.writeback);
                batch
            };
            if batch.is_empty() {
                continue;
            }
            // One disk-lock hold drains the whole queue: a single merged
            // elevator pass through the disk, not one acquisition per
            // buffered write.
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            self.contention
                .writeback_batches
                .fetch_add(1, Ordering::Relaxed);
            self.contention
                .writeback_requests
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            let mut disk = shard.disk.lock().unwrap();
            let before = disk.stats().clone();
            let result = disk.try_submit_batch(batch);
            shard
                .powered_off
                .store(disk.powered_off(), Ordering::Release);
            let delta = disk.stats().since(&before);
            drop(disk);
            self.io.add(&delta);
            match result {
                Ok(ns) => {
                    shard.elapsed_ns.fetch_add(ns, Ordering::Relaxed);
                }
                Err(f) => {
                    if first_fault.is_none() {
                        first_fault = Some((i, f));
                    }
                }
            }
        }
        match first_fault {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Allocate everything the delayed-allocation path has buffered
    /// (sorted, coalesced, one request per run — §II-B).
    fn allocate_delayed(&self) {
        let dirty: Vec<FileId> = {
            let _order = lockorder::acquire(LockClass::OstQueue);
            let mut dirty = self.delayed_dirty.lock().unwrap();
            dirty.drain().collect()
        };
        if dirty.is_empty() {
            return;
        }
        let stream = StreamId::new(u32::MAX, 0); // allocation is flush-driven
        for id in dirty {
            let slot = {
                let _order = lockorder::acquire(LockClass::FileMap);
                self.files.read().unwrap().get(&id).cloned()
            };
            let Some(slot) = slot else {
                continue; // unlinked while dirty
            };
            let _order = lockorder::acquire(LockClass::File);
            let mut inner = slot.inner.lock().unwrap();
            for col in 0..inner.delayed.len() {
                let mut ranges = std::mem::take(&mut inner.delayed[col]);
                if ranges.is_empty() {
                    continue;
                }
                ranges.sort_unstable();
                let mut runs: Vec<(u64, u64)> = Vec::new();
                for (start, len) in ranges {
                    match runs.last_mut() {
                        Some((s, l)) if *s + *l >= start => {
                            let end = (*s + *l).max(start + len);
                            *l = end - *s;
                        }
                        _ => runs.push((start, len)),
                    }
                }
                let phys_ost = slot.phys(col);
                let shard = &self.shards[phys_ost];
                for (start, len) in runs {
                    for (gap_start, gap_len) in inner.trees[col].gaps(start, len) {
                        let allocated = {
                            let _order = lockorder::acquire(LockClass::Policy);
                            let mut policy = shard.policy.lock().unwrap();
                            policy.extend(&shard.alloc, id, stream, gap_start, gap_len)
                        };
                        let tree = &mut inner.trees[col];
                        let before = tree.extent_count();
                        let mut logical = gap_start;
                        let mut writes = Vec::new();
                        for (phys, l) in allocated {
                            tree.insert(Extent::new(logical, phys, l));
                            writes.push((phys, l));
                            logical += l;
                        }
                        let added = tree.extent_count().saturating_sub(before) as u64;
                        self.mds_cpu_ns.fetch_add(
                            added * self.config.mds_cpu_ns_per_extent,
                            Ordering::Relaxed,
                        );
                        self.queue_writes(phys_ost, writes);
                    }
                }
            }
        }
    }

    // ----- fault injection ------------------------------------------------

    /// Install a seeded fault plan on every IO server, reseeded per disk
    /// (`seed + index`) exactly like [`DiskArray::install_faults`].
    pub fn install_faults(&self, plan: FaultPlan) {
        for (i, shard) in self.shards.iter().enumerate() {
            let mut p = plan.clone();
            p.seed = plan.seed.wrapping_add(i as u64);
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            let mut disk = shard.disk.lock().unwrap();
            disk.install_faults(p);
            shard
                .powered_off
                .store(disk.powered_off(), Ordering::Release);
        }
    }

    /// Remove all fault injectors.
    pub fn clear_faults(&self) {
        for shard in &self.shards {
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            let mut disk = shard.disk.lock().unwrap();
            disk.clear_faults();
            shard
                .powered_off
                .store(disk.powered_off(), Ordering::Release);
        }
    }

    /// Restore power to every IO server after injected power cuts.
    pub fn power_restore(&self) {
        for shard in &self.shards {
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            let mut disk = shard.disk.lock().unwrap();
            disk.power_restore();
            shard
                .powered_off
                .store(disk.powered_off(), Ordering::Release);
        }
    }

    /// Is any IO server dead from an injected power cut?
    pub fn any_powered_off(&self) -> bool {
        self.shards.iter().any(|shard| {
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            let off = shard.disk.lock().unwrap().powered_off();
            off
        })
    }

    /// One IO server's fault counters, when a plan is installed.
    pub fn fault_stats(&self, ost: usize) -> Option<FaultStats> {
        let _order = lockorder::acquire(LockClass::Disk);
        self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
        self.shards[ost].disk.lock().unwrap().fault_stats().cloned()
    }

    // ----- disk population lifecycle (health machine) ---------------------

    /// This bay's current health (lock-free mirror read).
    pub fn ost_health(&self, ost: usize) -> DiskHealth {
        DiskHealth::from_u8(self.shards[ost].health.load(Ordering::Acquire))
    }

    /// Every bay's health, indexed by physical OST.
    pub fn ost_healths(&self) -> Vec<DiskHealth> {
        (0..self.shards.len()).map(|i| self.ost_health(i)).collect()
    }

    /// Total disk bays (active + spare), the shard count.
    pub fn total_osts(&self) -> usize {
        self.shards.len()
    }

    /// Physical OSTs currently accepting new placements.
    pub fn active_osts(&self) -> Vec<u32> {
        (0..self.shards.len() as u32)
            .filter(|&i| self.ost_health(i as usize).accepts_placements())
            .collect()
    }

    /// Drive the bay's health machine, validating the transition. Panics
    /// on an illegal jump — lifecycle drivers must follow the machine.
    fn set_ost_health(&self, ost: usize, to: DiskHealth) {
        let from = self.ost_health(ost);
        assert!(
            from.can_transition(to),
            "illegal OST {ost} health transition {from} -> {to}"
        );
        self.shards[ost].health.store(to as u8, Ordering::Release);
    }

    /// Kill one IO server's disk outright ([`Disk::fail`]): every request
    /// fails until the drive is swapped. Queued IO toward the dead disk is
    /// discarded — it died with the device, like dirty pages toward a
    /// failed drive. Reads of its data are served degraded (replica /
    /// parity) where the tier map has coverage; writes touching it fail
    /// with [`IoFault::DiskFailed`]. The bay enters `Failed` from any
    /// populated state — disks die mid-drain and mid-rebuild too.
    pub fn fail_ost(&self, ost: usize) {
        let shard = &self.shards[ost];
        {
            let _order = lockorder::acquire(LockClass::OstQueue);
            let mut queues = shard.queues.lock().unwrap();
            queues.pending.clear();
            queues.writeback.clear();
        }
        let _order = lockorder::acquire(LockClass::Disk);
        self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
        shard.disk.lock().unwrap().fail();
        self.set_ost_health(ost, DiskHealth::Failed);
    }

    /// Populate an empty expansion bay with a blank drive: the bay turns
    /// `Healthy` and every *subsequent* create stripes over it. Existing
    /// files keep their width; rebalancing onto the new bay is the drain/
    /// defrag machinery's job, not placement's.
    pub fn add_ost(&self, ost: usize) {
        let shard = &self.shards[ost];
        {
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            let mut disk = shard.disk.lock().unwrap();
            disk.replace();
            shard
                .powered_off
                .store(disk.powered_off(), Ordering::Release);
        }
        self.set_ost_health(ost, DiskHealth::Healthy);
        let mut lc = self.lifecycle.lock().unwrap();
        lc.osts_added += 1;
    }

    /// Swap in a blank replacement drive ([`Disk::replace`]): the bay
    /// moves `Failed → Rebuilding` — it accepts IO again (fresh writes
    /// land on the new media), but reads keep routing to redundancy where
    /// coverage exists until [`ConcurrentFs::rebuild_ost`] completes.
    pub fn begin_rebuild(&self, ost: usize) {
        let shard = &self.shards[ost];
        {
            let _order = lockorder::acquire(LockClass::Disk);
            self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
            let mut disk = shard.disk.lock().unwrap();
            disk.replace();
            shard
                .powered_off
                .store(disk.powered_off(), Ordering::Release);
        }
        self.set_ost_health(ost, DiskHealth::Rebuilding);
    }

    /// Background-rebuild the replaced disk under live traffic: rewrite
    /// every lost run *at its original physical address* from replicas or
    /// stripe parity, one file at a time (writers to other files — and to
    /// this one, between files — interleave freely), then rebuild the tier
    /// runs housed here (replica copies re-copied from their primaries,
    /// parity re-encoded from its members) and clear the degraded flag.
    ///
    /// Returns `(rebuilt, uncovered)` block counts; `uncovered` spans had
    /// no redundancy (including data written after the swap, which is
    /// already on the new media and needs no rebuild).
    pub fn rebuild_ost(&self, ost: usize) -> Result<(u64, u64), (usize, IoFault)> {
        assert!(
            self.ost_health(ost) == DiskHealth::Rebuilding,
            "bay is not rebuilding (begin_rebuild first)"
        );
        let slots: Vec<Arc<FileSlot>> = {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files.read().unwrap().values().cloned().collect()
        };
        let mut rebuilt = 0u64;
        let mut uncovered = 0u64;
        for slot in &slots {
            let _tier_order = lockorder::acquire(LockClass::Tier);
            let tier = self.tier.read().unwrap();
            let _order = lockorder::acquire(LockClass::File);
            let inner = slot.inner.lock().unwrap();
            // Every stripe column this bay hosts for the file (at most one
            // today, but the map makes plurality possible after drains).
            for col in (0..inner.trees.len()).filter(|&c| slot.phys(c) == ost) {
                let extents: Vec<(u64, u64, u64)> = inner.trees[col]
                    .extents()
                    .map(|e| (e.logical, e.physical, e.len))
                    .collect();
                for (logical, phys, len) in extents {
                    // Piecewise: an aged extent outgrows any one replica
                    // run, so coverage is consumed sub-span by sub-span.
                    for (start, sublen, source) in tier.degraded_sources(
                        slot.id.0,
                        col as u32,
                        logical,
                        len,
                        |c| slot.ost_map[c as usize],
                        |o| self.ost_healthy(o),
                    ) {
                        let sub_phys = phys + (start - logical);
                        match source {
                            Some(DegradedSource::Replica {
                                ost: rost,
                                phys: rphys,
                                len: rlen,
                            }) => {
                                self.submit_direct(
                                    rost as usize,
                                    vec![BlockRequest::read(rphys, rlen)],
                                )?;
                                self.submit_direct(
                                    ost,
                                    vec![BlockRequest::write(sub_phys, sublen)],
                                )?;
                                rebuilt += sublen;
                            }
                            Some(DegradedSource::Stripe { unit, reads, .. }) => {
                                for (rost, rstart, parity) in reads {
                                    if parity {
                                        self.submit_direct(
                                            rost as usize,
                                            vec![BlockRequest::read(rstart, unit)],
                                        )?;
                                    } else {
                                        let batch: Vec<BlockRequest> = inner.trees[rost as usize]
                                            .resolve(rstart, unit)
                                            .into_iter()
                                            .map(|(p, l)| BlockRequest::read(p, l))
                                            .collect();
                                        self.submit_direct(slot.phys(rost as usize), batch)?;
                                    }
                                }
                                self.submit_direct(
                                    ost,
                                    vec![BlockRequest::write(sub_phys, sublen)],
                                )?;
                                rebuilt += sublen;
                            }
                            None => uncovered += sublen,
                        }
                    }
                }
            }
        }
        // The tier runs housed on this disk: replica copies and parity.
        let tier_runs = {
            let _order = lockorder::acquire(LockClass::Tier);
            self.tier.read().unwrap().runs_on_ost(ost as u32)
        };
        for run in tier_runs {
            let slot = {
                let _order = lockorder::acquire(LockClass::FileMap);
                self.files.read().unwrap().get(&FileId(run.file)).cloned()
            };
            let Some(slot) = slot else {
                continue; // unlinked since the snapshot
            };
            let _tier_order = lockorder::acquire(LockClass::Tier);
            let tier = self.tier.read().unwrap();
            let _order = lockorder::acquire(LockClass::File);
            let inner = slot.inner.lock().unwrap();
            if run.parity {
                let group = tier.groups().iter().find(|g| {
                    g.file == run.file
                        && g.parity
                            .iter()
                            .any(|&(o, p)| o as usize == ost && p == run.phys)
                });
                let Some(g) = group else { continue };
                // Members are stripe columns of the file; read each from
                // the bay hosting that column.
                for &(most, mstart) in &g.members {
                    let batch: Vec<BlockRequest> = inner.trees[most as usize]
                        .resolve(mstart, g.unit)
                        .into_iter()
                        .map(|(p, l)| BlockRequest::read(p, l))
                        .collect();
                    self.submit_direct(slot.phys(most as usize), batch)?;
                }
            } else {
                let replica = tier.replicas().iter().find(|r| {
                    r.file == run.file && r.dst_ost as usize == ost && r.dst_phys == run.phys
                });
                let Some(r) = replica else { continue };
                let batch: Vec<BlockRequest> = inner.trees[r.src_ost as usize]
                    .resolve(r.logical, r.len)
                    .into_iter()
                    .map(|(p, l)| BlockRequest::read(p, l))
                    .collect();
                self.submit_direct(slot.phys(r.src_ost as usize), batch)?;
            }
            self.submit_direct(ost, vec![BlockRequest::write(run.phys, run.len)])?;
            rebuilt += run.len;
        }
        self.set_ost_health(ost, DiskHealth::Healthy);
        {
            let mut lc = self.lifecycle.lock().unwrap();
            lc.rebuilds_completed += 1;
            lc.rebuilt_blocks += rebuilt;
        }
        Ok((rebuilt, uncovered))
    }

    /// Is this bay's disk dead (failed, not yet replaced)?
    pub fn ost_failed(&self, ost: usize) -> bool {
        self.ost_health(ost) == DiskHealth::Failed
    }

    /// Is this bay degraded (dead, or replaced but not yet rebuilt)?
    pub fn ost_degraded(&self, ost: usize) -> bool {
        self.ost_health(ost).degraded()
    }

    /// Lifecycle counters accumulated so far (rebuilds, additions, scrub
    /// tallies inherited from the engine).
    pub fn lifecycle(&self) -> LifecycleStats {
        *self.lifecycle.lock().unwrap()
    }

    /// Submit one batch straight to a shard's disk (rebuild IO), charging
    /// time and stats exactly like a flush.
    fn submit_direct(
        &self,
        ost_idx: usize,
        batch: Vec<BlockRequest>,
    ) -> Result<Nanos, (usize, IoFault)> {
        if batch.is_empty() {
            return Ok(0);
        }
        let shard = &self.shards[ost_idx];
        let _order = lockorder::acquire(LockClass::Disk);
        self.contention.disk_locks.fetch_add(1, Ordering::Relaxed);
        let mut disk = shard.disk.lock().unwrap();
        let before = disk.stats().clone();
        let result = disk.try_submit_batch(batch);
        shard
            .powered_off
            .store(disk.powered_off(), Ordering::Release);
        let delta = disk.stats().since(&before);
        drop(disk);
        self.io.add(&delta);
        match result {
            Ok(ns) => {
                shard.elapsed_ns.fetch_add(ns, Ordering::Relaxed);
                Ok(ns)
            }
            Err(f) => Err((ost_idx, f)),
        }
    }

    // ----- tier surface ----------------------------------------------------

    /// Snapshot-and-reset the lock-free access recorder: `(file, reads,
    /// writes)` deltas since the last drain, files with no traffic
    /// omitted. This is the heat classifier's feed.
    pub fn drain_access(&self) -> Vec<(OpenFile, u64, u64)> {
        let slots: Vec<Arc<FileSlot>> = {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files.read().unwrap().values().cloned().collect()
        };
        let mut out: Vec<(OpenFile, u64, u64)> = slots
            .iter()
            .filter_map(|s| {
                let r = s.reads.swap(0, Ordering::Relaxed);
                let w = s.writes.swap(0, Ordering::Relaxed);
                (r != 0 || w != 0).then_some((OpenFile(s.id), r, w))
            })
            .collect();
        out.sort_by_key(|(f, ..)| f.0 .0);
        out
    }

    /// A clone of the tier map (diagnostics, benches, checkers).
    pub fn tier_snapshot(&self) -> TierMap {
        let _order = lockorder::acquire(LockClass::Tier);
        self.tier.read().unwrap().clone()
    }

    /// Run `f` with exclusive access to the tier map (artifact
    /// registration from the maintenance pass / tests). Must be called
    /// with no engine lock of rank ≥ [`LockClass::Tier`] held.
    pub fn with_tier_mut<R>(&self, f: impl FnOnce(&mut TierMap) -> R) -> R {
        let _order = lockorder::acquire(LockClass::Tier);
        f(&mut self.tier.write().unwrap())
    }

    // ----- WAL surface (the mif-server ack gate) --------------------------

    /// Block until the data-path WAL record `seqno` is durable (the record
    /// rides a merged group-commit flush). Must be called with no lock
    /// held; this is the service layer's per-batch durability barrier.
    pub fn wal_commit(&self, seqno: u64) {
        self.wal.commit(seqno);
    }

    /// The WAL's durable watermark: records with seqno strictly below this
    /// are on the journal media. One lock-free load (see
    /// [`GroupCommitWal::durable_watermark`]).
    pub fn wal_durable_watermark(&self) -> u64 {
        self.wal.durable_watermark()
    }

    /// Arm a deterministic crash on a future merged WAL flush (tests and
    /// the `service_scaling` power-cut scenario).
    pub fn wal_set_fault(&self, plan: mif_mds::FlushFaultPlan) {
        self.wal.set_fault(plan);
    }

    /// Has an armed WAL fault fired? A frozen journal media is the
    /// power-cut instant: the service layer treats it as server death and
    /// stops issuing acks.
    pub fn wal_frozen(&self) -> bool {
        self.wal.frozen()
    }

    // ----- introspection --------------------------------------------------

    /// Is `file` a live (created, not unlinked) handle?
    pub fn has_file(&self, file: OpenFile) -> bool {
        self.slot(file).is_some()
    }

    /// Total extents of a file across all OSTs.
    pub fn file_extents(&self, file: OpenFile) -> u64 {
        self.with_inner(file, |inner| {
            inner.trees.iter().map(|t| t.extent_count() as u64).sum()
        })
        .unwrap_or(0)
    }

    /// File size in blocks.
    pub fn file_size(&self, file: OpenFile) -> u64 {
        self.with_inner(file, |inner| inner.size_blocks)
            .unwrap_or(0)
    }

    /// Blocks physically allocated to the file (mapped blocks).
    pub fn file_allocated(&self, file: OpenFile) -> u64 {
        self.with_inner(file, |inner| {
            inner.trees.iter().map(|t| t.mapped_blocks()).sum()
        })
        .unwrap_or(0)
    }

    fn with_inner<R>(&self, file: OpenFile, f: impl FnOnce(&FileInner) -> R) -> Option<R> {
        let slot = self.slot(file)?;
        let _order = lockorder::acquire(LockClass::File);
        let inner = slot.inner.lock().unwrap();
        Some(f(&inner))
    }

    /// Free blocks across all OSTs.
    pub fn free_blocks(&self) -> u64 {
        self.shards.iter().map(|s| s.alloc.free_blocks()).sum()
    }

    /// Data-path elapsed time: the engine's inherited clock plus the
    /// busiest shard's accumulated service time (parallel shards overlap,
    /// so the slowest one gates the front-end, like a round).
    pub fn data_elapsed_ns(&self) -> Nanos {
        self.base_elapsed_ns
            + self
                .shards
                .iter()
                .map(|s| s.elapsed_ns.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0)
    }

    /// Every statistic the front-end exports, in one aggregate: the
    /// lock-free contention telemetry and IO totals, plus the per-file
    /// extent histogram (which briefly takes each file's lock — call it
    /// between waves, not on the hot path). This is the one accessor
    /// benches, tests and the service layer read.
    pub fn stats(&self) -> FsStats {
        let mut extent_hist = [0u64; 16];
        let slots: Vec<Arc<FileSlot>> = {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files.read().unwrap().values().cloned().collect()
        };
        for slot in &slots {
            let _order = lockorder::acquire(LockClass::File);
            let inner = slot.inner.lock().unwrap();
            let n: u64 = inner.trees.iter().map(|t| t.extent_count() as u64).sum();
            if n == 0 {
                continue;
            }
            let bucket = (63 - n.leading_zeros() as usize).min(15);
            extent_hist[bucket] += 1;
        }
        FsStats {
            contention: self.contention_snapshot(),
            io: self.io.snapshot(),
            extent_hist,
            health: self.ost_healths(),
            lifecycle: self.lifecycle(),
        }
    }

    /// Contention counters since construction (lock-free snapshot; the
    /// `BENCH 6` reduced-contention evidence).
    fn contention_snapshot(&self) -> ContentionSnapshot {
        let wal = self.wal.stats();
        ContentionSnapshot {
            write_ops: self.contention.write_ops.load(Ordering::Relaxed),
            disk_lock_acquisitions: self.contention.disk_locks.load(Ordering::Relaxed),
            lockfree_window_claims: self.contention.lockfree_claims.load(Ordering::Relaxed),
            locked_policy_extends: self.contention.policy_extends.load(Ordering::Relaxed),
            writeback_batches: self.contention.writeback_batches.load(Ordering::Relaxed),
            writeback_requests: self.contention.writeback_requests.load(Ordering::Relaxed),
            wal_records: wal.records,
            wal_flushes: wal.flushes,
            wal_max_batch: wal.max_batch,
            wal_backpressure_parks: wal.backpressure_parks,
        }
    }

    /// The data-path WAL's journal image (recovery-scan input; tests).
    pub fn wal_image(&self) -> Vec<u8> {
        self.wal.image()
    }

    /// Metrics snapshot for the Table I harness.
    pub fn metrics(&self) -> FsMetrics {
        let slots: Vec<Arc<FileSlot>> = {
            let _order = lockorder::acquire(LockClass::FileMap);
            self.files.read().unwrap().values().cloned().collect()
        };
        let mut m = FsMetrics {
            elapsed_ns: self.data_elapsed_ns(),
            mds_cpu_ns: self.mds_cpu_ns.load(Ordering::Relaxed),
            files: slots.len() as u64,
            ..Default::default()
        };
        for slot in slots {
            let _order = lockorder::acquire(LockClass::File);
            let inner = slot.inner.lock().unwrap();
            for t in &inner.trees {
                m.add_tree(t);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: PolicyKind) -> FsConfig {
        FsConfig::with_policy(policy, 2)
    }

    fn unwrap_arc(fs: Arc<ConcurrentFs>) -> ConcurrentFs {
        Arc::try_unwrap(fs).ok().expect("threads joined")
    }

    #[test]
    fn parallel_writers_to_disjoint_files() {
        let fs = Arc::new(ConcurrentFs::new(cfg(PolicyKind::OnDemand)));
        let files: Vec<OpenFile> = (0..4).map(|i| fs.create(&format!("f{i}"), None)).collect();
        std::thread::scope(|s| {
            for (t, &file) in files.iter().enumerate() {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    let stream = StreamId::new(t as u32, 0);
                    for i in 0..64u64 {
                        fs.write(file, stream, i * 4, 4);
                    }
                });
            }
        });
        fs.sync();
        for &file in &files {
            assert_eq!(fs.file_allocated(file), 256);
            assert_eq!(fs.file_size(file), 256);
            fs.close(file); // last close releases preallocation windows
        }
        let engine = unwrap_arc(fs).into_engine();
        let total: u64 = files.iter().map(|&f| engine.file_allocated(f)).sum();
        assert_eq!(total, 4 * 256);
        assert_eq!(
            engine.free_blocks(),
            2 * engine.config.geometry.blocks - total
        );
    }

    #[test]
    fn engine_round_trips_through_the_front_end() {
        let mut fs = FileSystem::new(cfg(PolicyKind::OnDemand));
        let file = fs.create("seeded", None);
        fs.begin_round();
        fs.write(file, StreamId::new(1, 0), 0, 32);
        fs.end_round();
        fs.sync_data();
        let size_before = fs.file_size(file);
        let elapsed_before = fs.data_elapsed_ns();

        let cfs = ConcurrentFs::from_engine(fs);
        assert_eq!(cfs.file_size(file), size_before);
        cfs.write(file, StreamId::new(1, 0), 32, 32);
        cfs.sync();

        let engine = cfs.into_engine();
        assert_eq!(engine.file_size(file), 64);
        assert_eq!(engine.file_allocated(file), 64);
        assert!(engine.data_elapsed_ns() >= elapsed_before);
    }

    #[test]
    fn namespace_ops_from_many_threads() {
        let fs = Arc::new(ConcurrentFs::new(cfg(PolicyKind::Vanilla)));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    for i in 0..16 {
                        let name = format!("t{t}-f{i}");
                        let f = fs.create(&name, None);
                        fs.write(f, StreamId::new(t, 0), 0, 2);
                        assert_eq!(fs.open(&name), Some(f));
                        fs.close(f);
                        fs.close(f);
                    }
                });
            }
        });
        fs.sync();
        let engine = unwrap_arc(fs).into_engine();
        assert_eq!(engine.metrics().files, 8 * 16);
    }

    #[test]
    fn delayed_allocation_coalesces_under_threads() {
        let fs = Arc::new(ConcurrentFs::new(cfg(PolicyKind::Delayed)));
        let file = fs.create("delayed", None);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    let stream = StreamId::new(t, 0);
                    let base = t as u64 * 1024;
                    for i in 0..32u64 {
                        fs.write(file, stream, base + i * 4, 4);
                    }
                });
            }
        });
        fs.sync();
        assert_eq!(fs.file_allocated(file), 4 * 128);
        let engine = unwrap_arc(fs).into_engine();
        assert_eq!(engine.file_allocated(file), 4 * 128);
    }

    /// Same workload, group commit on vs off: per-op disk-lock
    /// acquisitions and per-op WAL flushes must drop by at least 4x —
    /// the single-core proof that the serialization points are gone.
    #[test]
    fn group_commit_cuts_contention_at_least_4x() {
        let run = |group_commit: bool| {
            let mut config = FsConfig::with_policy(PolicyKind::OnDemand, 4);
            config.group_commit = group_commit;
            let fs = Arc::new(ConcurrentFs::new(config));
            let files: Vec<OpenFile> = (0..4).map(|i| fs.create(&format!("f{i}"), None)).collect();
            std::thread::scope(|s| {
                for (t, &file) in files.iter().enumerate() {
                    let fs = Arc::clone(&fs);
                    s.spawn(move || {
                        let stream = StreamId::new(t as u32, 0);
                        for i in 0..256u64 {
                            fs.write(file, stream, i * 4, 4);
                            if i % 64 == 63 {
                                fs.sync();
                            }
                        }
                    });
                }
            });
            fs.sync();
            fs.stats().contention
        };
        let baseline = run(false);
        let fast = run(true);
        assert_eq!(baseline.write_ops, fast.write_ops);
        // Each baseline record commits individually; only a commit racing
        // another thread's in-flight flush gets covered for free, so
        // flushes track records almost 1:1.
        assert!(
            baseline.wal_flushes * 10 >= baseline.wal_records * 9,
            "baseline pays ~one flush per record ({} flushes / {} records)",
            baseline.wal_flushes,
            baseline.wal_records
        );
        let ops = fast.write_ops as f64;
        let lock_ratio = (baseline.disk_lock_acquisitions as f64 / ops)
            / (fast.disk_lock_acquisitions as f64 / ops);
        let flush_ratio = (baseline.wal_flushes as f64 / ops) / (fast.wal_flushes as f64 / ops);
        assert!(
            lock_ratio >= 4.0,
            "disk-lock acquisitions/op must drop >= 4x (got {lock_ratio:.1}x)"
        );
        assert!(
            flush_ratio >= 4.0,
            "WAL flushes/op must drop >= 4x (got {flush_ratio:.1}x)"
        );
        assert!(
            fast.lockfree_window_claims > fast.locked_policy_extends,
            "most on-demand allocations should be lock-free claims"
        );
    }

    /// The lock-free fast paths must not change what gets allocated:
    /// identical workload, identical layout, either setting.
    #[test]
    fn group_commit_flag_does_not_change_allocation() {
        for policy in [
            PolicyKind::Vanilla,
            PolicyKind::Reservation,
            PolicyKind::OnDemand,
        ] {
            let run = |group_commit: bool| {
                let mut config = cfg(policy);
                config.group_commit = group_commit;
                let fs = ConcurrentFs::new(config);
                let a = fs.create("a", None);
                let b = fs.create("b", None);
                for i in 0..64u64 {
                    fs.write(a, StreamId::new(1, 0), i * 4, 4);
                    fs.write(b, StreamId::new(2, 0), i * 8, 8);
                }
                fs.sync();
                fs.close(a);
                fs.close(b);
                let m = fs.metrics();
                (m.extents, m.blocks)
            };
            assert_eq!(run(true), run(false), "{policy}");
        }
    }

    /// Every write op journals exactly one durable-intent record, and the
    /// recovered log replays them all (commit-ack-after-durable).
    #[test]
    fn wal_records_every_write_and_recovers_them() {
        let fs = ConcurrentFs::new(cfg(PolicyKind::OnDemand));
        let file = fs.create("logged", None);
        for i in 0..100u64 {
            fs.write(file, StreamId::new(1, 0), i * 4, 4);
        }
        fs.sync();
        let c = fs.stats().contention;
        assert_eq!(c.wal_records, 100);
        assert!(c.wal_flushes < c.wal_records, "flushes coalesce");
        let rec = mif_mds::recover_writes(&fs.wal_image(), 0);
        assert_eq!(rec.stop, mif_mds::RecoveryStop::CleanEnd);
        assert_eq!(rec.ops.len(), 100);
        assert!(rec
            .ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.offset == i as u64 * 4 && op.len == 4));
    }

    /// The powered-off mirror reports a dead server without the write
    /// path ever sweeping disk locks, and recovers after power restore.
    #[test]
    fn powered_off_mirror_tracks_the_disk() {
        let fs = ConcurrentFs::new(cfg(PolicyKind::Vanilla));
        let file = fs.create("doomed", None);
        fs.write(file, StreamId::new(1, 0), 0, 4);
        fs.sync();
        let plan = FaultPlan {
            power_cut_after_writes: Some(1),
            ..FaultPlan::none(7)
        };
        fs.install_faults(plan);
        // The cut fires inside a flush; the mirror flips with it.
        let mut saw_fault = false;
        for i in 1..64u64 {
            if fs.try_write(file, StreamId::new(1, 0), i * 4, 4).is_err() || fs.try_sync().is_err()
            {
                saw_fault = true;
                break;
            }
        }
        assert!(saw_fault, "the injected power cut must surface");
        assert!(fs.any_powered_off());
        assert!(
            fs.try_write(file, StreamId::new(1, 0), 4096, 4).is_err(),
            "writes to a dead server fail via the lock-free mirror"
        );
        fs.clear_faults();
        fs.power_restore();
        assert!(fs.try_write(file, StreamId::new(1, 0), 4096, 4).is_ok());
        fs.sync();
    }

    #[test]
    fn unlink_reclaims_all_space() {
        let fs = ConcurrentFs::new(cfg(PolicyKind::OnDemand));
        let total = fs.free_blocks();
        let file = fs.create("gone", None);
        fs.write(file, StreamId::new(1, 0), 0, 128);
        fs.sync();
        fs.close(file);
        fs.unlink(file);
        assert_eq!(fs.free_blocks(), total);
    }

    #[test]
    fn rename_moves_the_name_and_survives_quiesce() {
        let fs = ConcurrentFs::new(cfg(PolicyKind::OnDemand));
        let file = fs.create("before", None);
        fs.write(file, StreamId::new(0, 0), 0, 8);
        let ino = fs.rename_file(file, "after").expect("rename succeeds");
        assert!(fs.open("before").is_none(), "old name gone");
        assert_eq!(fs.open("after"), Some(file), "new name resolves");
        fs.close(file); // balance the open above
        fs.sync();
        let mut engine = fs.into_engine();
        assert_eq!(engine.open("after"), Some(file));
        assert_eq!(engine.mds().lookup(ROOT_INO, "after"), Some(ino));
        assert_eq!(engine.mds().lookup(ROOT_INO, "before"), None);
    }

    #[test]
    fn opposing_renames_do_not_deadlock() {
        // a→b racing c→a across many shard-routed stripes: the ascending
        // stripe-index acquisition makes the double-guard safe no matter
        // which stripes the names hash into.
        let mut config = cfg(PolicyKind::OnDemand);
        config.mds_shards = 4;
        let fs = Arc::new(ConcurrentFs::new(config));
        for round in 0..16u32 {
            let a = fs.create(&format!("left{round}"), None);
            let b = fs.create(&format!("right{round}"), None);
            std::thread::scope(|s| {
                let fsa = Arc::clone(&fs);
                let fsb = Arc::clone(&fs);
                s.spawn(move || fsa.rename_file(a, &format!("right-post{round}")));
                s.spawn(move || fsb.rename_file(b, &format!("left-post{round}")));
            });
            assert!(fs.open(&format!("right-post{round}")).is_some());
            assert!(fs.open(&format!("left-post{round}")).is_some());
        }
    }

    #[test]
    fn concurrent_renames_of_one_file_chase_the_name() {
        // Two threads renaming the same file serialize on the source
        // stripe; the loser re-reads the winner's name and moves it on.
        let fs = Arc::new(ConcurrentFs::new(cfg(PolicyKind::OnDemand)));
        let file = fs.create("start", None);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    fs.rename_file(file, &format!("claim{t}"));
                });
            }
        });
        // Exactly one name survives and it is one of the claims.
        let survivors: Vec<u32> = (0..4)
            .filter(|t| fs.open(&format!("claim{t}")).is_some())
            .collect();
        assert_eq!(survivors.len(), 1, "one final name: {survivors:?}");
        assert!(fs.open("start").is_none());
    }

    #[test]
    fn shard_routed_stripes_stay_in_range_and_stable() {
        let mut config = cfg(PolicyKind::OnDemand);
        config.mds_shards = 3;
        let fs = ConcurrentFs::new(config);
        for i in 0..64 {
            let name = format!("f{i}");
            let idx = fs.stripe_index(&name);
            assert!(idx < MDS_STRIPES);
            assert_eq!(idx, fs.stripe_index(&name), "routing is pure");
        }
    }
}
