//! The tier map: where the redundancy layer keeps its replicas and parity.
//!
//! Hot/cold tiering (ROADMAP item 4) adds *derived* data to the file
//! system: hot ranges get full replicas on other OSTs so reads can fan
//! out, cold ranges get packed into 4+2 erasure-coded stripe groups whose
//! two parity runs can reconstruct any two lost members. This module is
//! the bookkeeping for that derived data — plain state, no IO:
//!
//! * [`ReplicaRun`] — a verbatim copy of one logical span of one (file,
//!   OST), living in allocator-owned blocks on another OST;
//! * [`StripeGroup`] — four equal-length data members (referenced by
//!   their *logical* position, so defrag moving the physical blocks does
//!   not stale the group) plus two parity runs on distinct OSTs;
//! * [`TierMap`] — the collection, with the queries the read path
//!   (degraded coverage), the write path (invalidation), fsck (ownership
//!   of tier blocks) and the maintenance pass (teardown candidates) need.
//!
//! Validity is content-based: a write into a covered range marks the
//! covering artifacts invalid (the copy no longer matches the primary),
//! and invalid artifacts are torn down lazily by the maintenance pass.
//! Relocation (defrag) does *not* invalidate anything — members are
//! tracked logically and the content is unchanged.
//!
//! Everything here is deterministic and clonable so fsck can snapshot the
//! map alongside its allocator/extent image.

/// A replicated copy of one logical span.
///
/// The source span is `len` blocks of (`file`, `src_ost`) starting at
/// OST-local logical block `logical`; the copy occupies the physical run
/// `dst_phys..dst_phys + len` on `dst_ost`, claimed from that OST's
/// allocator. `valid` flips to `false` the moment a write lands inside
/// the source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRun {
    /// Raw `FileId` of the primary.
    pub file: u64,
    /// OST the primary span lives on.
    pub src_ost: u32,
    /// First OST-local logical block of the span.
    pub logical: u64,
    /// Span length in blocks.
    pub len: u64,
    /// OST holding the copy.
    pub dst_ost: u32,
    /// Physical start of the copy's run on `dst_ost`.
    pub dst_phys: u64,
    /// Does the copy still match the primary?
    pub valid: bool,
}

impl ReplicaRun {
    /// Does this replica cover all of `logical..logical + len` of
    /// (`file`, `ost`)?
    pub fn covers(&self, file: u64, ost: u32, logical: u64, len: u64) -> bool {
        self.file == file
            && self.src_ost == ost
            && self.logical <= logical
            && logical + len <= self.logical + self.len
    }

    /// Does this replica's source span overlap `logical..logical + len`
    /// of (`file`, `ost`)?
    pub fn overlaps(&self, file: u64, ost: u32, logical: u64, len: u64) -> bool {
        self.file == file
            && self.src_ost == ost
            && self.logical < logical + len
            && logical < self.logical + self.len
    }
}

/// Data members per stripe group (the "4" of 4+2).
pub const STRIPE_DATA: usize = 4;
/// Parity runs per stripe group (the "+2"): any [`STRIPE_DATA`] of the
/// six runs reconstruct the rest, so the group survives two lost OSTs.
pub const STRIPE_PARITY: usize = 2;

/// One erasure-coded stripe group over cold data.
///
/// The four data members are *references* to live file extents — `unit`
/// blocks of (`file`, member OST) starting at the member's OST-local
/// logical block. Only the two parity runs are newly allocated (on OSTs
/// distinct from each other; the demoter also keeps them off the member
/// OSTs so one disk death never takes two of the six runs). Storing
/// members logically means defrag relocating the physical blocks leaves
/// the group intact; a *write* into a member is what invalidates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeGroup {
    /// Raw `FileId` the data members belong to.
    pub file: u64,
    /// Group index (unique per file; the WAL names groups by it).
    pub group: u64,
    /// Blocks per member run.
    pub unit: u64,
    /// The [`STRIPE_DATA`] data members: (OST, OST-local logical start).
    pub members: Vec<(u32, u64)>,
    /// The [`STRIPE_PARITY`] parity runs: (OST, physical start).
    pub parity: Vec<(u32, u64)>,
    /// Does the parity still match the members' content?
    pub valid: bool,
}

impl StripeGroup {
    /// The member (if any) whose span covers all of
    /// `logical..logical + len` on (`file`, `ost`). Returns its index.
    pub fn member_covering(&self, file: u64, ost: u32, logical: u64, len: u64) -> Option<usize> {
        if self.file != file {
            return None;
        }
        self.members.iter().position(|&(most, mstart)| {
            most == ost && mstart <= logical && logical + len <= mstart + self.unit
        })
    }

    /// Does any member overlap `logical..logical + len` on (`file`, `ost`)?
    pub fn member_overlaps(&self, file: u64, ost: u32, logical: u64, len: u64) -> bool {
        self.file == file
            && self.members.iter().any(|&(most, mstart)| {
                most == ost && mstart < logical + len && logical < mstart + self.unit
            })
    }

    /// The six (OST, role) slots of the group: members first (role =
    /// member index), then parity (role = [`STRIPE_DATA`] + parity index).
    pub fn slots(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.members
            .iter()
            .enumerate()
            .map(|(i, &(ost, _))| (ost, i))
            .chain(
                self.parity
                    .iter()
                    .enumerate()
                    .map(|(i, &(ost, _))| (ost, STRIPE_DATA + i)),
            )
    }
}

/// One allocator-owned run the tier layer holds on some OST — what fsck
/// folds into its ownership image and what unlink/teardown must free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierRun {
    /// Raw `FileId` the artifact derives from.
    pub file: u64,
    /// OST the run lives on.
    pub ost: u32,
    /// Physical start.
    pub phys: u64,
    /// Length in blocks.
    pub len: u64,
    /// `true` for a stripe group's parity run, `false` for a replica.
    pub parity: bool,
}

/// How a degraded read can be served when the primary's OST is down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradedSource {
    /// Read the covering replica: (`dst_ost`, physical start of the
    /// requested sub-span, length).
    Replica { ost: u32, phys: u64, len: u64 },
    /// Reconstruct from a stripe group: read each listed surviving run in
    /// full — (OST, member-logical-or-parity-physical, is_parity) — and
    /// decode. Exactly [`STRIPE_DATA`] entries.
    Stripe {
        file: u64,
        group: u64,
        unit: u64,
        /// Surviving runs to read: members as (ost, logical start,
        /// false), parity as (ost, physical start, true).
        reads: Vec<(u32, u64, bool)>,
    },
}

/// The collection of tier artifacts, shared between the engine, the
/// concurrent front-end (behind a lock), the redundancy engine and fsck.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierMap {
    replicas: Vec<ReplicaRun>,
    groups: Vec<StripeGroup>,
}

impl TierMap {
    pub fn new() -> Self {
        Self::default()
    }

    // ----- placement --------------------------------------------------------

    /// Record a (valid) replica. The caller has already claimed the
    /// destination run from the allocator and copied the data.
    pub fn add_replica(&mut self, r: ReplicaRun) {
        debug_assert!(r.len > 0);
        self.replicas.push(r);
    }

    /// Record a (valid) stripe group. Panics unless the shape is exactly
    /// [`STRIPE_DATA`] members + [`STRIPE_PARITY`] parity runs on
    /// pairwise-distinct parity OSTs.
    pub fn add_group(&mut self, g: StripeGroup) {
        assert_eq!(g.members.len(), STRIPE_DATA, "stripe group needs 4 members");
        assert_eq!(
            g.parity.len(),
            STRIPE_PARITY,
            "stripe group needs 2 parity runs"
        );
        assert!(
            g.parity[0].0 != g.parity[1].0,
            "parity runs must sit on distinct OSTs"
        );
        debug_assert!(g.unit > 0);
        self.groups.push(g);
    }

    /// The next unused stripe-group index for `file`.
    pub fn next_group_index(&self, file: u64) -> u64 {
        self.groups
            .iter()
            .filter(|g| g.file == file)
            .map(|g| g.group + 1)
            .max()
            .unwrap_or(0)
    }

    // ----- read-path queries ------------------------------------------------

    /// A valid replica covering the span whose copy sits on a healthy OST,
    /// if one exists. Ties are broken by the caller (least-loaded fan-out)
    /// via [`TierMap::replicas_covering`].
    pub fn replica_covering(
        &self,
        file: u64,
        ost: u32,
        logical: u64,
        len: u64,
        healthy: impl Fn(u32) -> bool,
    ) -> Option<&ReplicaRun> {
        self.replicas
            .iter()
            .find(|r| r.valid && r.covers(file, ost, logical, len) && healthy(r.dst_ost))
    }

    /// All valid replicas covering the span with healthy copies — the
    /// read path picks the least-loaded destination among these.
    pub fn replicas_covering(
        &self,
        file: u64,
        ost: u32,
        logical: u64,
        len: u64,
        healthy: impl Fn(u32) -> bool,
    ) -> Vec<&ReplicaRun> {
        self.replicas
            .iter()
            .filter(|r| r.valid && r.covers(file, ost, logical, len) && healthy(r.dst_ost))
            .collect()
    }

    /// How (if at all) a read of `logical..logical + len` on (`file`,
    /// `ost`) can be served while `ost` is unhealthy: prefer a replica
    /// (one read), fall back to stripe reconstruction ([`STRIPE_DATA`]
    /// surviving runs). `None` means the span is not redundantly covered.
    ///
    /// Source coordinates (`ost` here, member OSTs) are stripe *columns*
    /// of `file`; `phys_of` translates a column to the physical OST
    /// currently hosting it (identity until a drain moves a column), so
    /// the `healthy` check — which speaks physical bays — is applied to
    /// the right disk. Replica destinations and parity runs are physical
    /// already and are passed to `healthy` untranslated.
    pub fn degraded_source(
        &self,
        file: u64,
        ost: u32,
        logical: u64,
        len: u64,
        phys_of: impl Fn(u32) -> u32,
        healthy: impl Fn(u32) -> bool,
    ) -> Option<DegradedSource> {
        if let Some(r) = self.replica_covering(file, ost, logical, len, &healthy) {
            return Some(DegradedSource::Replica {
                ost: r.dst_ost,
                phys: r.dst_phys + (logical - r.logical),
                len,
            });
        }
        for g in self.groups.iter().filter(|g| g.valid) {
            let Some(lost) = g.member_covering(file, ost, logical, len) else {
                continue;
            };
            let mut reads: Vec<(u32, u64, bool)> = Vec::with_capacity(STRIPE_DATA);
            for (i, &(most, mstart)) in g.members.iter().enumerate() {
                if i != lost && healthy(phys_of(most)) && reads.len() < STRIPE_DATA {
                    reads.push((most, mstart, false));
                }
            }
            for &(post, pphys) in &g.parity {
                if healthy(post) && reads.len() < STRIPE_DATA {
                    reads.push((post, pphys, true));
                }
            }
            if reads.len() == STRIPE_DATA {
                return Some(DegradedSource::Stripe {
                    file: g.file,
                    group: g.group,
                    unit: g.unit,
                    reads,
                });
            }
        }
        None
    }

    /// Piecewise degraded coverage for `logical..logical + len` of
    /// (`file`, column `ost`): maximal sub-spans in order, each paired
    /// with the degraded source serving it (replica preferred, then
    /// stripe reconstruction) or `None` where nothing covers the bytes.
    /// An aged, defragmented extent far outgrows any single replica run,
    /// so an all-or-nothing [`TierMap::degraded_source`] query would
    /// report a well-replicated span as uncovered — rebuilds consume
    /// coverage run by run instead.
    pub fn degraded_sources(
        &self,
        file: u64,
        ost: u32,
        logical: u64,
        len: u64,
        phys_of: impl Fn(u32) -> u32,
        healthy: impl Fn(u32) -> bool,
    ) -> Vec<(u64, u64, Option<DegradedSource>)> {
        let end = logical + len;
        let mut out: Vec<(u64, u64, Option<DegradedSource>)> = Vec::new();
        let mut pos = logical;
        while pos < end {
            if let Some(r) = self.replicas.iter().find(|r| {
                r.valid
                    && r.file == file
                    && r.src_ost == ost
                    && r.logical <= pos
                    && pos < r.logical + r.len
                    && healthy(r.dst_ost)
            }) {
                let cover = (r.logical + r.len - pos).min(end - pos);
                out.push((
                    pos,
                    cover,
                    Some(DegradedSource::Replica {
                        ost: r.dst_ost,
                        phys: r.dst_phys + (pos - r.logical),
                        len: cover,
                    }),
                ));
                pos += cover;
                continue;
            }
            if let Some((src, cover)) =
                self.stripe_source_at(file, ost, pos, end - pos, &phys_of, &healthy)
            {
                out.push((pos, cover, Some(src)));
                pos += cover;
                continue;
            }
            // Uncovered: skip to the next artifact that could cover, or
            // the span end, merging adjacent uncovered stretches.
            let mut next = end;
            for r in &self.replicas {
                if r.valid
                    && r.file == file
                    && r.src_ost == ost
                    && r.logical > pos
                    && healthy(r.dst_ost)
                {
                    next = next.min(r.logical);
                }
            }
            for g in self.groups.iter().filter(|g| g.valid && g.file == file) {
                for &(most, mstart) in &g.members {
                    if most == ost && mstart > pos {
                        next = next.min(mstart);
                    }
                }
            }
            match out.last_mut() {
                Some((s, l, None)) if *s + *l == pos => *l += next - pos,
                _ => out.push((pos, next - pos, None)),
            }
            pos = next;
        }
        out
    }

    /// The stripe group (if any) whose member covers block `pos` of
    /// (`file`, `ost`) with enough healthy runs to reconstruct, plus how
    /// far past `pos` that member's span extends (capped at `max_len`).
    fn stripe_source_at(
        &self,
        file: u64,
        ost: u32,
        pos: u64,
        max_len: u64,
        phys_of: &impl Fn(u32) -> u32,
        healthy: &impl Fn(u32) -> bool,
    ) -> Option<(DegradedSource, u64)> {
        for g in self.groups.iter().filter(|g| g.valid) {
            let Some(lost) = g.member_covering(file, ost, pos, 1) else {
                continue;
            };
            let mut reads: Vec<(u32, u64, bool)> = Vec::with_capacity(STRIPE_DATA);
            for (i, &(most, mstart)) in g.members.iter().enumerate() {
                if i != lost && healthy(phys_of(most)) && reads.len() < STRIPE_DATA {
                    reads.push((most, mstart, false));
                }
            }
            for &(post, pphys) in &g.parity {
                if healthy(post) && reads.len() < STRIPE_DATA {
                    reads.push((post, pphys, true));
                }
            }
            if reads.len() == STRIPE_DATA {
                let (_, mstart) = g.members[lost];
                let cover = (mstart + g.unit - pos).min(max_len);
                return Some((
                    DegradedSource::Stripe {
                        file: g.file,
                        group: g.group,
                        unit: g.unit,
                        reads,
                    },
                    cover,
                ));
            }
        }
        None
    }

    /// A bay left the population for good (a drained bay retired): every
    /// derived artifact physically housed there is gone with the disk.
    /// Mark replicas whose copy lives on the bay and groups with a parity
    /// run there invalid, so coverage queries skip them, re-replication
    /// re-places the spans elsewhere, and maintenance reaps the husks.
    /// Returns how many artifacts flipped. *Failed* bays don't take this
    /// path: their artifacts are filtered by the health check while the
    /// bay is down and re-synthesized in place by the rebuild.
    pub fn invalidate_on_bay(&mut self, ost: u32) -> u32 {
        let mut n = 0;
        for r in &mut self.replicas {
            if r.valid && r.dst_ost == ost {
                r.valid = false;
                n += 1;
            }
        }
        for g in &mut self.groups {
            if g.valid && g.parity.iter().any(|&(p, _)| p == ost) {
                g.valid = false;
                n += 1;
            }
        }
        n
    }

    // ----- write-path invalidation ------------------------------------------

    /// Would [`TierMap::invalidate_overlap`] flip anything for this span?
    /// The write hot path asks this under a shared lock first, so the
    /// exclusive lock is only taken when an artifact actually overlaps.
    pub fn has_valid_overlap(&self, file: u64, ost: u32, logical: u64, len: u64) -> bool {
        self.replicas
            .iter()
            .any(|r| r.valid && r.overlaps(file, ost, logical, len))
            || self
                .groups
                .iter()
                .any(|g| g.valid && g.member_overlaps(file, ost, logical, len))
    }

    /// A write landed on `logical..logical + len` of (`file`, `ost`):
    /// mark every covering/overlapping artifact invalid. Returns how many
    /// artifacts flipped valid → invalid (already-invalid ones don't
    /// count). Cheap and in-memory — the actual teardown (freeing the
    /// derived blocks, WAL-logged) happens lazily at maintenance.
    pub fn invalidate_overlap(&mut self, file: u64, ost: u32, logical: u64, len: u64) -> u32 {
        let mut n = 0;
        for r in &mut self.replicas {
            if r.valid && r.overlaps(file, ost, logical, len) {
                r.valid = false;
                n += 1;
            }
        }
        for g in &mut self.groups {
            if g.valid && g.member_overlaps(file, ost, logical, len) {
                g.valid = false;
                n += 1;
            }
        }
        n
    }

    /// Invalidate every artifact of `file` (truncate — content bounds
    /// changed wholesale).
    pub fn invalidate_file(&mut self, file: u64) -> u32 {
        let mut n = 0;
        for r in &mut self.replicas {
            if r.valid && r.file == file {
                r.valid = false;
                n += 1;
            }
        }
        for g in &mut self.groups {
            if g.valid && g.file == file {
                g.valid = false;
                n += 1;
            }
        }
        n
    }

    // ----- teardown ---------------------------------------------------------

    /// Remove the tier run at (`file`, `dst_ost`, `dst_phys`) from the
    /// map: a replica, or one parity run of a group (the group itself is
    /// dropped once its last parity run goes). The caller frees the
    /// blocks. Idempotent: `false` if no such run exists (WAL redo).
    pub fn remove_run(&mut self, file: u64, dst_ost: u32, dst_phys: u64) -> bool {
        if let Some(i) = self
            .replicas
            .iter()
            .position(|r| r.file == file && r.dst_ost == dst_ost && r.dst_phys == dst_phys)
        {
            self.replicas.swap_remove(i);
            return true;
        }
        for gi in 0..self.groups.len() {
            let g = &mut self.groups[gi];
            if g.file != file {
                continue;
            }
            if let Some(pi) = g
                .parity
                .iter()
                .position(|&(ost, phys)| ost == dst_ost && phys == dst_phys)
            {
                g.parity.remove(pi);
                if g.parity.is_empty() {
                    self.groups.swap_remove(gi);
                }
                return true;
            }
        }
        false
    }

    /// Every allocator-owned run the map holds for `file` — what unlink
    /// must free before dropping the artifacts.
    pub fn runs_of_file(&self, file: u64) -> Vec<TierRun> {
        self.runs_where(|r| r.file == file)
    }

    /// Every allocator-owned run the map holds on `ost` — fsck's
    /// ownership image and the rebuild scanner.
    pub fn runs_on_ost(&self, ost: u32) -> Vec<TierRun> {
        self.runs_where(|r| r.ost == ost)
    }

    fn runs_where(&self, keep: impl Fn(&TierRun) -> bool) -> Vec<TierRun> {
        let mut out = Vec::new();
        for r in &self.replicas {
            let run = TierRun {
                file: r.file,
                ost: r.dst_ost,
                phys: r.dst_phys,
                len: r.len,
                parity: false,
            };
            if keep(&run) {
                out.push(run);
            }
        }
        for g in &self.groups {
            for &(ost, phys) in &g.parity {
                let run = TierRun {
                    file: g.file,
                    ost,
                    phys,
                    len: g.unit,
                    parity: true,
                };
                if keep(&run) {
                    out.push(run);
                }
            }
        }
        out.sort_by_key(|r| (r.ost, r.phys));
        out
    }

    /// Drop every artifact of `file` from the map (unlink; the caller has
    /// freed the runs). Returns how many artifacts went.
    pub fn drop_file(&mut self, file: u64) -> u32 {
        let before = self.replicas.len() + self.groups.len();
        self.replicas.retain(|r| r.file != file);
        self.groups.retain(|g| g.file != file);
        (before - self.replicas.len() - self.groups.len()) as u32
    }

    /// The allocator-owned runs of every *invalid* artifact — the lazy
    /// maintenance pass frees these (through the tier WAL) and then
    /// removes the artifacts with [`TierMap::remove_run`].
    pub fn invalid_runs(&self) -> Vec<TierRun> {
        let mut out = Vec::new();
        for r in self.replicas.iter().filter(|r| !r.valid) {
            out.push(TierRun {
                file: r.file,
                ost: r.dst_ost,
                phys: r.dst_phys,
                len: r.len,
                parity: false,
            });
        }
        for g in self.groups.iter().filter(|g| !g.valid) {
            for &(ost, phys) in &g.parity {
                out.push(TierRun {
                    file: g.file,
                    ost,
                    phys,
                    len: g.unit,
                    parity: true,
                });
            }
        }
        out.sort_by_key(|r| (r.ost, r.phys));
        out
    }

    // ----- introspection ----------------------------------------------------

    /// All replicas, placement order.
    pub fn replicas(&self) -> &[ReplicaRun] {
        &self.replicas
    }

    /// All stripe groups, placement order.
    pub fn groups(&self) -> &[StripeGroup] {
        &self.groups
    }

    /// (valid replicas, valid groups, invalid artifacts).
    pub fn counts(&self) -> (usize, usize, usize) {
        let vr = self.replicas.iter().filter(|r| r.valid).count();
        let vg = self.groups.iter().filter(|g| g.valid).count();
        let inv = (self.replicas.len() - vr) + (self.groups.len() - vg);
        (vr, vg, inv)
    }

    /// Is the map empty (no artifacts at all)?
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty() && self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(file: u64, logical: u64, dst_ost: u32) -> ReplicaRun {
        ReplicaRun {
            file,
            src_ost: 0,
            logical,
            len: 64,
            dst_ost,
            dst_phys: 1024,
            valid: true,
        }
    }

    fn group(file: u64, gi: u64) -> StripeGroup {
        StripeGroup {
            file,
            group: gi,
            unit: 32,
            members: vec![(0, 0), (1, 0), (2, 0), (3, 0)],
            parity: vec![(4, 2048), (5, 2048)],
            valid: true,
        }
    }

    #[test]
    fn replica_covering_respects_span_validity_and_health() {
        let mut m = TierMap::new();
        m.add_replica(replica(7, 128, 2));
        // Fully inside the span, healthy copy.
        assert!(m.replica_covering(7, 0, 140, 8, |_| true).is_some());
        // Sticking out of the span.
        assert!(m.replica_covering(7, 0, 180, 16, |_| true).is_none());
        // Wrong file / wrong ost.
        assert!(m.replica_covering(8, 0, 140, 8, |_| true).is_none());
        assert!(m.replica_covering(7, 1, 140, 8, |_| true).is_none());
        // Copy's OST down.
        assert!(m.replica_covering(7, 0, 140, 8, |o| o != 2).is_none());
        // Invalidated by a write.
        assert_eq!(m.invalidate_overlap(7, 0, 130, 4), 1);
        assert!(m.replica_covering(7, 0, 140, 8, |_| true).is_none());
        // Second write into the same artifact does not double-count.
        assert_eq!(m.invalidate_overlap(7, 0, 130, 4), 0);
    }

    #[test]
    fn degraded_source_prefers_replica_then_stripe() {
        let mut m = TierMap::new();
        m.add_group(group(7, 0));
        m.add_replica(replica(7, 0, 2));
        // OST 0 down: replica wins (one read, exact sub-span).
        let s = m.degraded_source(7, 0, 16, 8, |c| c, |o| o != 0).unwrap();
        assert_eq!(
            s,
            DegradedSource::Replica {
                ost: 2,
                phys: 1024 + 16,
                len: 8
            }
        );
        // Invalidate the replica: stripe reconstruction takes over with
        // exactly four surviving reads.
        m.invalidate_overlap(7, 0, 0, 64);
        // (the group's member on OST 0 was also invalidated — rebuild it)
        let mut m = TierMap::new();
        m.add_group(group(7, 0));
        let s = m.degraded_source(7, 0, 16, 8, |c| c, |o| o != 0).unwrap();
        match s {
            DegradedSource::Stripe { unit, reads, .. } => {
                assert_eq!(unit, 32);
                assert_eq!(reads.len(), STRIPE_DATA);
                assert!(reads.iter().all(|&(ost, _, _)| ost != 0));
                // Three surviving members + one parity run.
                assert_eq!(reads.iter().filter(|r| r.2).count(), 1);
            }
            s => panic!("expected stripe source, got {s:?}"),
        }
    }

    #[test]
    fn stripe_survives_two_lost_osts_but_not_three() {
        let mut m = TierMap::new();
        m.add_group(group(7, 0));
        let down2 = |o: u32| o != 0 && o != 1;
        assert!(m.degraded_source(7, 0, 0, 32, |c| c, down2).is_some());
        let down3 = |o: u32| o != 0 && o != 1 && o != 4;
        // Two members + one parity lost: only 3 of 6 runs left.
        assert!(m.degraded_source(7, 0, 0, 32, |c| c, down3).is_none());
    }

    #[test]
    fn remove_run_is_idempotent_and_drops_empty_groups() {
        let mut m = TierMap::new();
        m.add_replica(replica(7, 0, 2));
        m.add_group(group(7, 0));
        assert!(m.remove_run(7, 2, 1024)); // replica
        assert!(!m.remove_run(7, 2, 1024)); // redo: already gone
        assert!(m.remove_run(7, 4, 2048)); // first parity
        assert_eq!(m.groups().len(), 1, "group lives while parity remains");
        assert!(m.remove_run(7, 5, 2048)); // last parity
        assert!(m.is_empty(), "group dropped with its last parity run");
    }

    #[test]
    fn runs_enumerations_cover_replicas_and_parity() {
        let mut m = TierMap::new();
        m.add_replica(replica(7, 0, 4));
        m.add_group(group(7, 0));
        let of_file = m.runs_of_file(7);
        assert_eq!(of_file.len(), 3); // 1 replica + 2 parity
        assert_eq!(of_file.iter().filter(|r| r.parity).count(), 2);
        assert_eq!(m.runs_on_ost(4).len(), 2); // replica dst + one parity
        assert_eq!(m.runs_on_ost(5).len(), 1);
        assert!(m.runs_on_ost(0).is_empty());
        assert_eq!(m.drop_file(7), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn invalid_runs_feed_the_maintenance_pass() {
        let mut m = TierMap::new();
        m.add_replica(replica(7, 0, 2));
        m.add_group(group(7, 0));
        assert!(m.invalid_runs().is_empty());
        assert_eq!(m.invalidate_file(7), 2);
        // 1 replica run + 2 parity runs now want teardown.
        assert_eq!(m.invalid_runs().len(), 3);
        assert_eq!(m.counts(), (0, 0, 2));
        // Tear them down the way maintenance does.
        for run in m.invalid_runs() {
            assert!(m.remove_run(run.file, run.ost, run.phys));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn next_group_index_is_per_file() {
        let mut m = TierMap::new();
        assert_eq!(m.next_group_index(7), 0);
        m.add_group(group(7, 0));
        m.add_group(group(7, 1));
        m.add_group(group(9, 0));
        assert_eq!(m.next_group_index(7), 2);
        assert_eq!(m.next_group_index(9), 1);
        assert_eq!(m.next_group_index(11), 0);
    }
}
