//! Scrubber properties, on realistically aged systems:
//!
//! 1. every injected latent corruption is *found* within one pass;
//! 2. a clean array produces zero corruptions and zero findings;
//! 3. scrubbing never perturbs metadata consistency — fsck after a scrub
//!    agrees exactly with fsck alone;
//! 4. redundancy-covered damage is repaired from the surviving copies and
//!    the media ends verified-clean.

use mif_core::FileSystem;
use mif_fsck::{Finding, FsckOptions};
use mif_rng::SmallRng;
use mif_scrub::{scrub_pass, ScrubConfig, ScrubFinding};
use mif_tier::replicate_file;
use mif_workloads::{age_data_fs, DataAgingParams};

fn aged() -> FileSystem {
    let (fs, _) = age_data_fs(&DataAgingParams::default());
    fs
}

/// Plant `per_ost` latent defects on every bay, spread deterministically
/// over allocated and free space alike. Returns the distinct planted set.
fn plant_damage(fs: &mut FileSystem, seed: u64, per_ost: u64) -> Vec<(usize, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let blocks = fs.config.geometry.blocks;
    let mut planted = Vec::new();
    for ost in 0..fs.total_osts() {
        for _ in 0..per_ost {
            let b = rng.gen_range(0..blocks);
            fs.damage_block(ost, b);
            planted.push((ost, b));
        }
    }
    planted.sort_unstable();
    planted.dedup();
    planted
}

#[test]
fn every_injected_corruption_is_found_within_one_pass() {
    let mut fs = aged();
    let planted = plant_damage(&mut fs, 0xD15C, 16);
    let report = scrub_pass(&mut fs, &ScrubConfig::default());
    assert!(report.completed);
    assert_eq!(
        report.corruptions_found as usize,
        planted.len(),
        "one pass must surface every defect: {report:?}"
    );
    // Every defect was either repaired/healed or filed as a finding —
    // none vanished unaccounted.
    assert_eq!(
        (report.repaired + report.free_healed + report.findings.len() as u64) as usize,
        planted.len()
    );
    // The media ends clean except exactly the uncovered findings.
    let still_damaged: Vec<(usize, u64)> = (0..fs.total_osts())
        .flat_map(|ost| fs.damaged_blocks(ost).into_iter().map(move |b| (ost, b)))
        .collect();
    let mut reported: Vec<(usize, u64)> = report
        .findings
        .iter()
        .map(|f: &ScrubFinding| (f.ost, f.block))
        .collect();
    reported.sort_unstable();
    assert_eq!(still_damaged, reported);
}

#[test]
fn clean_array_produces_zero_findings() {
    let mut fs = aged();
    let report = scrub_pass(&mut fs, &ScrubConfig::default());
    assert!(report.completed);
    assert_eq!(report.corruptions_found, 0, "{report:?}");
    assert!(report.findings.is_empty());
    assert_eq!(report.repaired + report.free_healed, 0);
}

#[test]
fn scrub_then_fsck_agrees_with_fsck_alone() {
    // Aging is deterministic, so two builds are identical systems.
    let mut plain = aged();
    let mut scrubbed = aged();
    plant_damage(&mut plain, 7, 8);
    plant_damage(&mut scrubbed, 7, 8);

    scrub_pass(&mut scrubbed, &ScrubConfig::default());
    let direct: Vec<Finding> = mif_fsck::run(&mut plain, &FsckOptions::default()).findings;
    let after: Vec<Finding> = mif_fsck::run(&mut scrubbed, &FsckOptions::default()).findings;
    assert_eq!(
        direct, after,
        "scrubbing must not create or mask metadata inconsistencies"
    );
}

#[test]
fn replica_covered_damage_repairs_from_the_surviving_copy() {
    let mut fs = aged();
    let mut wal = mif_mds::TierWal::new();
    // Cover one survivor's spans with replicas, then damage a primary
    // block that a replica covers.
    let file = *fs.file_handles().first().expect("aged fs has files");
    replicate_file(&mut fs, &mut wal, file).expect("replication succeeds");
    let replica = fs.tier().replicas().first().cloned().expect("placed one");
    let col = replica.src_ost as usize;
    let ost = fs.ost_of_column(file, col).unwrap() as usize;
    let (_, phys, _) = fs
        .physical_layout(file, col)
        .iter()
        .copied()
        .find(|&(l, _, ln)| l <= replica.logical && replica.logical < l + ln)
        .expect("replica source is mapped");
    fs.damage_block(ost, phys);

    let report = scrub_pass(&mut fs, &ScrubConfig::default());
    assert_eq!(report.corruptions_found, 1, "{report:?}");
    assert_eq!(report.repaired, 1, "repaired from the replica");
    assert!(report.findings.is_empty());
    assert!(
        fs.damaged_blocks(ost).is_empty(),
        "primary verified clean after repair"
    );
    // Second pass proves the repair took: nothing left to find.
    let again = scrub_pass(&mut fs, &ScrubConfig::default());
    assert_eq!(again.corruptions_found, 0);
    assert_eq!(fs.lifecycle().scrub_passes, 2);
    assert_eq!(fs.lifecycle().scrub_corruptions_found, 1);
    assert_eq!(fs.lifecycle().scrub_repaired, 1);
}
