//! # mif-scrub — background media scrubbing for the MiF simulator
//!
//! Latent sector errors are the silent killer of long-lived disk fleets:
//! a grown media defect corrupts a block's content without any IO error,
//! and an ordinary read happily returns stale bytes. The only defense is
//! to *verify* the media before the data is needed — a scrubber that
//! walks every bay checksum-reading the platters, repairs what the
//! redundancy layer covers, and files findings for what it does not.
//!
//! One [`scrub_pass`] walks every serving bay (`Healthy`, `Draining`,
//! `Rebuilding`; failed and absent bays have no media to verify) in
//! fixed-size verify-read chunks ([`ScrubConfig::chunk_blocks`]), charged
//! against the disk clock like any other IO. Each damaged block found is
//! resolved to its owner and repaired in place — a write over a damaged
//! block lays down fresh content, healing the defect:
//!
//! * a **file extent** block repairs from the tier layer's redundancy
//!   (covering replica, else 4+2 stripe reconstruction) — the repair
//!   *reads the surviving copies*, never the damaged block itself, so a
//!   repaired block is correct by construction;
//! * a **replica** block re-copies from its primary span;
//! * a **parity** block re-encodes from its group's data members;
//! * a **free** block is simply rewritten (no content to lose);
//! * anything uncovered becomes a [`ScrubFinding`] — detected, reported,
//!   deliberately left damaged so the operator (and the next pass) sees
//!   the data loss instead of a silent "repair" from the damaged bytes.
//!
//! The pass is budgeted and resumable ([`scrub_step`] + [`ScrubCursor`]):
//! at most `budget_blocks_per_tick` blocks are verified per tick, and the
//! per-dispatch service time is sampled each tick — when the foreground
//! looks saturated the budget halves, exactly the defrag scheduler's
//! throttle shape, so scrubbing bounds its own impact on foreground p99.

use mif_core::{DegradedSource, FileSystem, LifecycleStats, OpenFile, TierRun};
use mif_simdisk::Nanos;

/// Throttle and sizing knobs for a scrub pass.
#[derive(Debug, Clone, Copy)]
pub struct ScrubConfig {
    /// Blocks per verify read (one sequential media read).
    pub chunk_blocks: u64,
    /// Verify-read budget per tick.
    pub budget_blocks_per_tick: u64,
    /// Per-dispatch service time above which the scrubber backs off.
    pub latency_backoff_ns: Nanos,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        Self {
            chunk_blocks: 2048,
            budget_blocks_per_tick: 16384,
            latency_backoff_ns: 40_000_000,
        }
    }
}

/// The budget never shrinks below this, so progress cannot stall.
const MIN_BUDGET_BLOCKS: u64 = 256;

/// Resume point of an interrupted pass: the next block to verify.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubCursor {
    /// Physical bay currently being walked.
    pub ost: usize,
    /// Next physical block on that bay.
    pub block: u64,
}

/// Who owned a damaged block the scrubber could not repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingOwner {
    /// A file extent with no covering replica or reconstructable stripe.
    File { file: u64, col: u32, logical: u64 },
    /// A replica run whose primary span is no longer mapped.
    Replica { file: u64 },
    /// A parity run whose group members are no longer fully mapped.
    Parity { file: u64, group: u64 },
}

/// One damaged block the redundancy layer does not cover: detected and
/// reported, but *not* silently papered over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubFinding {
    /// Physical bay holding the block.
    pub ost: usize,
    /// The damaged physical block.
    pub block: u64,
    pub owner: FindingOwner,
}

/// What one pass (or one budgeted step) accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks checksum-verified.
    pub scanned_blocks: u64,
    /// Damaged blocks detected.
    pub corruptions_found: u64,
    /// Damaged blocks repaired from redundancy (file data, replicas,
    /// parity) — re-read from surviving copies and rewritten.
    pub repaired: u64,
    /// Damaged *free* blocks healed by a plain rewrite.
    pub free_healed: u64,
    /// Uncovered damage: detected, reported, left in place.
    pub findings: Vec<ScrubFinding>,
    /// Ticks executed.
    pub ticks: u64,
    /// Ticks that ended in a latency backoff.
    pub backoffs: u64,
    /// Bays skipped because they serve no IO (failed / absent).
    pub skipped_bays: u64,
    /// The cursor wrapped: every serving bay was verified end to end.
    pub completed: bool,
}

impl ScrubReport {
    fn absorb_into(&self, lc: &mut LifecycleStats) {
        lc.scrub_scanned_blocks += self.scanned_blocks;
        lc.scrub_corruptions_found += self.corruptions_found;
        lc.scrub_repaired += self.repaired + self.free_healed;
        lc.scrub_findings += self.findings.len() as u64;
        if self.completed {
            lc.scrub_passes += 1;
        }
    }
}

/// One full scrub pass: every serving bay, end to end. Equivalent to
/// [`scrub_step`] from a fresh cursor with an unbounded block cap.
pub fn scrub_pass(fs: &mut FileSystem, cfg: &ScrubConfig) -> ScrubReport {
    let mut cursor = ScrubCursor::default();
    scrub_step(fs, cfg, &mut cursor, u64::MAX)
}

/// Verify at most `max_blocks` from `cursor`, advancing it; call again
/// with the same cursor to resume. `completed` turns true on the step
/// that walks past the last bay (the cursor then resets to the start, so
/// the next call begins a fresh pass).
pub fn scrub_step(
    fs: &mut FileSystem,
    cfg: &ScrubConfig,
    cursor: &mut ScrubCursor,
    max_blocks: u64,
) -> ScrubReport {
    let mut report = ScrubReport::default();
    let osts = fs.total_osts();
    let bay_blocks = fs.config.geometry.blocks;
    let mut budget = cfg.budget_blocks_per_tick.max(MIN_BUDGET_BLOCKS);

    'outer: while cursor.ost < osts {
        if !fs.ost_health(cursor.ost).serves_io() {
            if cursor.block == 0 {
                report.skipped_bays += 1;
            }
            cursor.ost += 1;
            cursor.block = 0;
            continue;
        }
        while cursor.block < bay_blocks {
            if report.scanned_blocks >= max_blocks {
                break 'outer;
            }
            report.ticks += 1;
            let tick_start = fs.data_stats();
            let mut verified_this_tick = 0u64;
            while verified_this_tick < budget && cursor.block < bay_blocks {
                let len = cfg
                    .chunk_blocks
                    .min(bay_blocks - cursor.block)
                    .min(max_blocks.saturating_sub(report.scanned_blocks))
                    .max(1);
                let damaged = match fs.scrub_disk_range(cursor.ost, cursor.block, len) {
                    Ok(d) => d,
                    // The bay died mid-pass: nothing left to verify here.
                    Err(_) => {
                        cursor.block = bay_blocks;
                        break;
                    }
                };
                cursor.block += len;
                report.scanned_blocks += len;
                verified_this_tick += len;
                for block in damaged {
                    report.corruptions_found += 1;
                    repair_block(fs, cursor.ost, block, &mut report);
                }
                if report.scanned_blocks >= max_blocks {
                    break;
                }
            }
            // Foreground-latency sample, the defrag scheduler's shape.
            let delta = fs.data_stats().since(&tick_start);
            let mean_ns = delta.busy_ns.checked_div(delta.dispatched).unwrap_or(0);
            if mean_ns > cfg.latency_backoff_ns {
                report.backoffs += 1;
                budget = (budget / 2).max(MIN_BUDGET_BLOCKS);
            } else if budget < cfg.budget_blocks_per_tick {
                budget = (budget * 2).min(cfg.budget_blocks_per_tick);
            }
        }
        if cursor.block >= bay_blocks {
            cursor.ost += 1;
            cursor.block = 0;
        }
    }
    if cursor.ost >= osts {
        report.completed = true;
        *cursor = ScrubCursor::default();
    }
    report.absorb_into(fs.lifecycle_mut());
    report
}

/// Who owns one physical block.
enum Owner {
    File {
        file: OpenFile,
        col: usize,
        logical: u64,
    },
    Tier(TierRun),
    Free,
}

fn owner_of(fs: &FileSystem, ost: usize, block: u64) -> Owner {
    // Tier artifacts first: their blocks are allocator-owned but mapped
    // by no file extent, so the extent walk below cannot claim them.
    for r in fs.tier().runs_on_ost(ost as u32) {
        if block >= r.phys && block < r.phys + r.len {
            return Owner::Tier(r);
        }
    }
    for file in fs.file_handles() {
        for col in 0..fs.column_count(file) {
            if fs.ost_of_column(file, col) != Some(ost as u32) {
                continue;
            }
            for (l, p, ln) in fs.physical_layout(file, col) {
                if block >= p && block < p + ln {
                    return Owner::File {
                        file,
                        col,
                        logical: l + (block - p),
                    };
                }
            }
        }
    }
    Owner::Free
}

/// The `(physical ost, phys, len)` reads backing `logical..logical+len`
/// of (`file`, column `col`), or `None` if the span is not fully mapped.
fn column_span_reads(
    fs: &FileSystem,
    file: OpenFile,
    col: usize,
    logical: u64,
    len: u64,
) -> Option<Vec<(usize, u64, u64)>> {
    let phys_ost = fs.ost_of_column(file, col)? as usize;
    let mut reads = Vec::new();
    let mut covered = 0;
    for (l, p, ln) in fs.physical_layout(file, col) {
        let lo = l.max(logical);
        let hi = (l + ln).min(logical + len);
        if lo < hi {
            reads.push((phys_ost, p + (lo - l), hi - lo));
            covered += hi - lo;
        }
    }
    (covered == len).then_some(reads)
}

/// Resolve one damaged block's owner and repair it if the redundancy
/// layer covers it; otherwise file a finding.
fn repair_block(fs: &mut FileSystem, ost: usize, block: u64, report: &mut ScrubReport) {
    match owner_of(fs, ost, block) {
        Owner::Free => {
            // Free space holds no content worth preserving: a plain
            // rewrite heals the defect before the block is next granted.
            if fs.tier_try_io(&[], &[(ost, block, 1)]).is_ok() {
                report.free_healed += 1;
            }
        }
        Owner::File { file, col, logical } => {
            let healths = fs.ost_healths();
            let map = fs.ost_map_of(file);
            let src = fs.tier().degraded_source(
                file.0 .0,
                col as u32,
                logical,
                1,
                |c| map[c as usize],
                |o| healths[o as usize].serves_io(),
            );
            let reads = match src {
                Some(DegradedSource::Replica {
                    ost: r_ost,
                    phys,
                    len,
                }) => Some(vec![(r_ost as usize, phys, len)]),
                Some(DegradedSource::Stripe { unit, reads, .. }) => {
                    let mut io = Vec::new();
                    let mut ok = true;
                    for (o, start, is_parity) in reads {
                        if is_parity {
                            io.push((o as usize, start, unit));
                        } else {
                            match column_span_reads(fs, file, o as usize, start, unit) {
                                Some(r) => io.extend(r),
                                None => ok = false,
                            }
                        }
                    }
                    ok.then_some(io)
                }
                None => None,
            };
            match reads {
                Some(reads) if fs.tier_try_io(&reads, &[(ost, block, 1)]).is_ok() => {
                    report.repaired += 1;
                }
                _ => report.findings.push(ScrubFinding {
                    ost,
                    block,
                    owner: FindingOwner::File {
                        file: file.0 .0,
                        col: col as u32,
                        logical,
                    },
                }),
            }
        }
        Owner::Tier(run) if !run.parity => {
            // A replica block re-copies from its primary span.
            let src = fs.tier().replicas().iter().find_map(|r| {
                (r.file == run.file
                    && r.dst_ost == run.ost
                    && block >= r.dst_phys
                    && block < r.dst_phys + r.len)
                    .then(|| (r.src_ost, r.logical + (block - r.dst_phys)))
            });
            let file = handle_of(fs, run.file);
            let reads = src.and_then(|(src_col, logical)| {
                column_span_reads(fs, file?, src_col as usize, logical, 1)
            });
            match reads {
                Some(reads) if fs.tier_try_io(&reads, &[(ost, block, 1)]).is_ok() => {
                    report.repaired += 1;
                }
                _ => report.findings.push(ScrubFinding {
                    ost,
                    block,
                    owner: FindingOwner::Replica { file: run.file },
                }),
            }
        }
        Owner::Tier(run) => {
            // A parity block re-encodes from its group's data members.
            let group = fs.tier().groups().iter().find_map(|g| {
                (g.file == run.file && g.parity.contains(&(run.ost, run.phys)))
                    .then(|| (g.group, g.unit, g.members.clone()))
            });
            let file = handle_of(fs, run.file);
            let reads = group.as_ref().and_then(|(_, unit, members)| {
                let mut io = Vec::new();
                for &(col, start) in members {
                    io.extend(column_span_reads(fs, file?, col as usize, start, *unit)?);
                }
                Some(io)
            });
            match reads {
                Some(reads) if fs.tier_try_io(&reads, &[(ost, block, 1)]).is_ok() => {
                    report.repaired += 1;
                }
                _ => report.findings.push(ScrubFinding {
                    ost,
                    block,
                    owner: FindingOwner::Parity {
                        file: run.file,
                        group: group.map(|(g, ..)| g).unwrap_or(u64::MAX),
                    },
                }),
            }
        }
    }
}

fn handle_of(fs: &FileSystem, file: u64) -> Option<OpenFile> {
    fs.file_handles().into_iter().find(|f| f.0 .0 == file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_alloc::{PolicyKind, StreamId};
    use mif_core::FsConfig;

    fn written_fs(osts: u32) -> (FileSystem, OpenFile) {
        let mut fs = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, osts));
        let f = fs.create("scrubbed", None);
        fs.begin_round();
        fs.write(f, StreamId::new(1, 0), 0, 256);
        fs.end_round();
        fs.sync_data();
        fs.close(f);
        (fs, f)
    }

    #[test]
    fn clean_array_scrubs_clean() {
        let (mut fs, _) = written_fs(4);
        let report = scrub_pass(&mut fs, &ScrubConfig::default());
        assert!(report.completed);
        assert_eq!(report.corruptions_found, 0);
        assert!(report.findings.is_empty());
        assert_eq!(
            report.scanned_blocks,
            4 * fs.config.geometry.blocks,
            "every block of every bay verified"
        );
        assert_eq!(fs.lifecycle().scrub_passes, 1);
    }

    #[test]
    fn free_space_damage_heals_in_place() {
        let (mut fs, _) = written_fs(3);
        let free = (0..fs.config.geometry.blocks)
            .find(|&b| !fs.allocator(2).is_allocated(b))
            .unwrap();
        fs.damage_block(2, free);
        let report = scrub_pass(&mut fs, &ScrubConfig::default());
        assert_eq!(report.corruptions_found, 1);
        assert_eq!(report.free_healed, 1);
        assert!(report.findings.is_empty());
        assert!(fs.damaged_blocks(2).is_empty(), "the rewrite healed it");
    }

    #[test]
    fn uncovered_file_damage_is_a_finding_not_a_silent_fix() {
        let (mut fs, f) = written_fs(3);
        let col = (0..fs.column_count(f))
            .find(|&c| !fs.physical_layout(f, c).is_empty())
            .unwrap();
        let ost = fs.ost_of_column(f, col).unwrap() as usize;
        let (_, phys, _) = fs.physical_layout(f, col)[0];
        fs.damage_block(ost, phys);
        let report = scrub_pass(&mut fs, &ScrubConfig::default());
        assert_eq!(report.corruptions_found, 1);
        assert_eq!(report.repaired, 0, "no redundancy to repair from");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(
            report.findings[0].owner,
            FindingOwner::File {
                file: f.0 .0,
                col: col as u32,
                logical: 0
            }
        );
        assert_eq!(
            fs.damaged_blocks(ost),
            vec![phys],
            "uncovered damage is left visible, not papered over"
        );
    }

    #[test]
    fn budgeted_steps_resume_and_cover_the_whole_array() {
        let (mut fs, _) = written_fs(2);
        let total = 2 * fs.config.geometry.blocks;
        let mut cursor = ScrubCursor::default();
        let mut scanned = 0;
        let mut steps = 0;
        loop {
            let r = scrub_step(&mut fs, &ScrubConfig::default(), &mut cursor, total / 7 + 1);
            scanned += r.scanned_blocks;
            steps += 1;
            if r.completed {
                break;
            }
        }
        assert_eq!(scanned, total);
        assert!(steps > 1, "the cap forced multiple resumes");
        assert_eq!(cursor, ScrubCursor::default(), "cursor reset for next pass");
    }
}
