//! Seeded, deterministic fault injection for the simulated disk.
//!
//! A [`FaultPlan`] describes *what can go wrong* (IO-error rate, torn-write
//! rate, corrupt-read rate, latency-spike rate and magnitude, an optional
//! power cut after N write requests) and carries the `u64` seed that makes every decision
//! replayable: the same plan over the same request sequence injects the
//! same faults in the same places. The [`FaultInjector`] consumes a fixed
//! number of RNG draws per request — three, regardless of which rates are
//! non-zero — so tweaking one probability never perturbs where the *other*
//! fault kinds land.
//!
//! The injector decides; the [`crate::Disk`] fallible submit path
//! (`try_submit_batch` and friends) enforces. On a fault, requests earlier
//! in the batch have already been serviced (they persist), the faulted
//! request is dropped or truncated, and the rest of the batch is lost —
//! exactly the prefix semantics a crash-consistency checker wants.

use crate::request::{BlockRequest, IoOp};
use crate::{BlockNo, Nanos};
use mif_rng::SmallRng;
use std::fmt;

/// How a corrupt block read manifested on the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// A few bits flipped — checksum mismatch, content garbage.
    BitFlip,
    /// The block came back all zeroes (dropped write, unmapped sector).
    ZeroFill,
    /// The block holds another sector's content (misdirected write).
    SwappedSector,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::BitFlip => write!(f, "bit-flip"),
            CorruptKind::ZeroFill => write!(f, "zero-fill"),
            CorruptKind::SwappedSector => write!(f, "swapped-sector"),
        }
    }
}

/// What went wrong with a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The device reported a hard error; nothing from this request (or the
    /// rest of its batch) reached the media.
    IoError { start: BlockNo, len: u64, op: IoOp },
    /// A read returned damaged content: the device serviced the request
    /// but `block` failed its integrity check. Scrubbers treat this as a
    /// media-level signal to re-verify the structures mapped over `block`.
    CorruptRead {
        start: BlockNo,
        len: u64,
        /// The damaged block within `[start, start+len)`.
        block: BlockNo,
        kind: CorruptKind,
    },
    /// A write was interrupted mid-transfer: the first `persisted` of
    /// `requested` blocks reached the media, the tail did not.
    TornWrite {
        start: BlockNo,
        persisted: u64,
        requested: u64,
    },
    /// The disk lost power. `after_writes` write requests were serviced in
    /// total before the cut; everything after it fails with this fault
    /// until [`crate::Disk::power_restore`] is called.
    PowerCut { after_writes: u64 },
    /// The device is dead — a whole-disk failure ([`crate::Disk::fail`]).
    /// Unlike a power cut, no restore brings it back: every request fails
    /// until the drive is physically swapped ([`crate::Disk::replace`]),
    /// after which the media holds nothing and must be rebuilt from
    /// redundancy elsewhere in the array.
    DiskFailed,
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFault::IoError { start, len, op } => {
                write!(f, "io error: {op:?} [{start}, +{len})")
            }
            IoFault::CorruptRead {
                start,
                len,
                block,
                kind,
            } => write!(f, "corrupt read ({kind}) at {block} in [{start}, +{len})"),
            IoFault::TornWrite {
                start,
                persisted,
                requested,
            } => write!(
                f,
                "torn write at {start}: {persisted}/{requested} blocks persisted"
            ),
            IoFault::PowerCut { after_writes } => {
                write!(f, "power cut after {after_writes} writes")
            }
            IoFault::DiskFailed => write!(f, "disk failed (dead device)"),
        }
    }
}

/// A replayable description of the faults a disk should inject.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision below.
    pub seed: u64,
    /// Per-request probability of a hard IO error (reads and writes).
    pub io_error_rate: f64,
    /// Per-write-request probability of persisting only a prefix.
    pub torn_write_rate: f64,
    /// Per-read-request probability of the content coming back damaged
    /// (bit-flip / zero-fill / swapped sector). The "corrupt_block" fault
    /// class: the device services the read but integrity checking fails.
    pub corrupt_read_rate: f64,
    /// Per-request probability of a service-time spike.
    pub latency_spike_rate: f64,
    /// Extra service time charged by one spike.
    pub latency_spike_ns: Nanos,
    /// Cut power after this many write requests have been serviced.
    pub power_cut_after_writes: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (but still burns RNG draws, so layering
    /// faults on later keeps earlier decisions in place).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            io_error_rate: 0.0,
            torn_write_rate: 0.0,
            corrupt_read_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_ns: 0,
            power_cut_after_writes: None,
        }
    }

    /// A randomized-but-replayable plan derived entirely from `seed`:
    /// small error/torn rates, occasional latency spikes, and (half the
    /// time) a power cut within the first couple hundred writes.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x00FA_017F_A017);
        // Field draws happen in declaration order of the original plan;
        // the corrupt-read draw was appended *after* them, so plans built
        // by older seeds keep every other field value unchanged.
        let io_error_rate = rng.gen::<f64>() * 0.02;
        let torn_write_rate = rng.gen::<f64>() * 0.02;
        let latency_spike_rate = rng.gen::<f64>() * 0.05;
        let latency_spike_ns = rng.gen_range(100_000u64..20_000_000);
        let power_cut_after_writes = if rng.gen_bool(0.5) {
            Some(rng.gen_range(1u64..256))
        } else {
            None
        };
        let corrupt_read_rate = rng.gen::<f64>() * 0.02;
        Self {
            seed,
            io_error_rate,
            torn_write_rate,
            corrupt_read_rate,
            latency_spike_rate,
            latency_spike_ns,
            power_cut_after_writes,
        }
    }

    /// Builder-style: set the IO-error rate.
    pub fn with_io_errors(mut self, rate: f64) -> Self {
        self.io_error_rate = rate;
        self
    }

    /// Builder-style: set the torn-write rate.
    pub fn with_torn_writes(mut self, rate: f64) -> Self {
        self.torn_write_rate = rate;
        self
    }

    /// Builder-style: set the corrupt-read rate.
    pub fn with_corrupt_reads(mut self, rate: f64) -> Self {
        self.corrupt_read_rate = rate;
        self
    }

    /// Builder-style: set the latency-spike rate and magnitude.
    pub fn with_latency_spikes(mut self, rate: f64, spike_ns: Nanos) -> Self {
        self.latency_spike_rate = rate;
        self.latency_spike_ns = spike_ns;
        self
    }

    /// Builder-style: cut power after `n` serviced write requests.
    pub fn with_power_cut_after(mut self, n: u64) -> Self {
        self.power_cut_after_writes = Some(n);
        self
    }
}

/// Counters for every fault the injector has fired.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FaultStats {
    pub io_errors: u64,
    pub torn_writes: u64,
    pub corrupt_reads: u64,
    pub latency_spikes: u64,
    pub spike_ns_total: Nanos,
    pub power_cuts: u64,
    /// Write requests that reached the fault check (serviced or not).
    pub writes_seen: u64,
}

/// The per-request verdict the injector hands the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Service normally.
    Allow,
    /// Service normally, but charge this much extra time.
    Delay(Nanos),
    /// Fail the request (and the rest of its batch).
    Fail(IoFault),
    /// Persist only the first `persisted` blocks, then fail the batch.
    Tear { persisted: u64 },
}

/// Stateful fault source: a [`FaultPlan`] plus the RNG stream and
/// power-state it implies.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    powered_off: bool,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng,
            powered_off: false,
            stats: FaultStats::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Is the simulated device currently without power?
    pub fn powered_off(&self) -> bool {
        self.powered_off
    }

    /// Restore power after a [`IoFault::PowerCut`].
    pub fn power_restore(&mut self) {
        self.powered_off = false;
    }

    /// Decide the fate of one request. Consumes exactly four RNG draws
    /// (error, tear, spike, tear length) for every request so decision
    /// streams stay aligned across plan variations.
    pub fn decide(&mut self, req: &BlockRequest) -> FaultDecision {
        if self.powered_off {
            return FaultDecision::Fail(IoFault::PowerCut {
                after_writes: self.stats.writes_seen,
            });
        }
        let err_draw = self.rng.gen::<f64>();
        let tear_draw = self.rng.gen::<f64>();
        let spike_draw = self.rng.gen::<f64>();
        let tear_len_draw = self.rng.next_u64();

        if req.op == IoOp::Write {
            if let Some(n) = self.plan.power_cut_after_writes {
                if self.stats.writes_seen >= n {
                    self.powered_off = true;
                    self.stats.power_cuts += 1;
                    return FaultDecision::Fail(IoFault::PowerCut {
                        after_writes: self.stats.writes_seen,
                    });
                }
            }
            self.stats.writes_seen += 1;
        }

        if err_draw < self.plan.io_error_rate {
            self.stats.io_errors += 1;
            return FaultDecision::Fail(IoFault::IoError {
                start: req.start,
                len: req.len,
                op: req.op,
            });
        }
        if req.op == IoOp::Write && tear_draw < self.plan.torn_write_rate {
            self.stats.torn_writes += 1;
            // Persist a strict prefix: 0..len blocks (never the whole
            // thing). A raw modulo keeps the draw count fixed (the bias is
            // negligible for request-sized lengths).
            let persisted = tear_len_draw % req.len.max(1);
            return FaultDecision::Tear { persisted };
        }
        // Reads reuse the tear draws (writes never corrupt-read, reads
        // never tear), so this class fits inside the same four-draw budget
        // and cannot shift where any other fault kind lands.
        if req.op == IoOp::Read && tear_draw < self.plan.corrupt_read_rate {
            self.stats.corrupt_reads += 1;
            let block = req.start + tear_len_draw % req.len.max(1);
            let kind = match tear_len_draw / req.len.max(1) % 3 {
                0 => CorruptKind::BitFlip,
                1 => CorruptKind::ZeroFill,
                _ => CorruptKind::SwappedSector,
            };
            return FaultDecision::Fail(IoFault::CorruptRead {
                start: req.start,
                len: req.len,
                block,
                kind,
            });
        }
        if spike_draw < self.plan.latency_spike_rate {
            self.stats.latency_spikes += 1;
            self.stats.spike_ns_total += self.plan.latency_spike_ns;
            return FaultDecision::Delay(self.plan.latency_spike_ns);
        }
        FaultDecision::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start: u64) -> BlockRequest {
        BlockRequest::write(start, 8)
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::none(42)
            .with_io_errors(0.1)
            .with_torn_writes(0.1)
            .with_latency_spikes(0.2, 1_000);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..500 {
            assert_eq!(a.decide(&w(i)), b.decide(&w(i)), "request {i}");
        }
    }

    #[test]
    fn zero_rates_allow_everything() {
        let mut inj = FaultInjector::new(FaultPlan::none(7));
        for i in 0..100 {
            assert_eq!(inj.decide(&w(i)), FaultDecision::Allow);
        }
        assert_eq!(inj.stats().writes_seen, 100);
    }

    #[test]
    fn power_cut_fires_exactly_after_n_writes() {
        let mut inj = FaultInjector::new(FaultPlan::none(7).with_power_cut_after(3));
        for i in 0..3 {
            assert_eq!(inj.decide(&w(i)), FaultDecision::Allow);
        }
        assert!(matches!(
            inj.decide(&w(3)),
            FaultDecision::Fail(IoFault::PowerCut { after_writes: 3 })
        ));
        // And the device stays dead, for reads too.
        assert!(matches!(
            inj.decide(&BlockRequest::read(0, 1)),
            FaultDecision::Fail(IoFault::PowerCut { .. })
        ));
        assert!(inj.powered_off());
        inj.power_restore();
        assert_eq!(inj.decide(&BlockRequest::read(0, 1)), FaultDecision::Allow);
    }

    #[test]
    fn reads_never_tear() {
        let mut inj = FaultInjector::new(FaultPlan::none(11).with_torn_writes(1.0));
        for i in 0..50 {
            assert_eq!(
                inj.decide(&BlockRequest::read(i, 4)),
                FaultDecision::Allow,
                "read {i}"
            );
        }
        assert!(matches!(inj.decide(&w(0)), FaultDecision::Tear { .. }));
    }

    #[test]
    fn tear_persists_a_strict_prefix() {
        let mut inj = FaultInjector::new(FaultPlan::none(3).with_torn_writes(1.0));
        for i in 0..200 {
            match inj.decide(&w(i)) {
                FaultDecision::Tear { persisted } => assert!(persisted < 8),
                other => panic!("expected tear, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_reads_fire_only_on_reads() {
        let mut inj = FaultInjector::new(FaultPlan::none(21).with_corrupt_reads(1.0));
        for i in 0..50 {
            assert_eq!(inj.decide(&w(i)), FaultDecision::Allow, "write {i}");
        }
        let r = BlockRequest::read(40, 8);
        match inj.decide(&r) {
            FaultDecision::Fail(IoFault::CorruptRead {
                start, len, block, ..
            }) => {
                assert_eq!((start, len), (40, 8));
                assert!((40..48).contains(&block));
            }
            other => panic!("expected corrupt read, got {other:?}"),
        }
        assert_eq!(inj.stats().corrupt_reads, 1);
    }

    #[test]
    fn corrupt_reads_cover_every_kind_deterministically() {
        let plan = FaultPlan::none(5).with_corrupt_reads(1.0);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let mut kinds = std::collections::HashSet::new();
        for i in 0..100 {
            let da = a.decide(&BlockRequest::read(i * 8, 8));
            assert_eq!(da, b.decide(&BlockRequest::read(i * 8, 8)), "read {i}");
            if let FaultDecision::Fail(IoFault::CorruptRead { kind, .. }) = da {
                kinds.insert(format!("{kind}"));
            }
        }
        assert_eq!(kinds.len(), 3, "all three corruption kinds appear");
    }

    #[test]
    fn corrupt_rate_does_not_shift_other_fault_sites() {
        // Same stream of mixed reads/writes under (a) errors only and
        // (b) errors + certain corruption: io-error sites must coincide,
        // and write decisions must be bit-identical.
        let base = FaultPlan::none(77).with_io_errors(0.05);
        let noisy = base.clone().with_corrupt_reads(1.0);
        let mut a = FaultInjector::new(base);
        let mut b = FaultInjector::new(noisy);
        for i in 0..1000 {
            let req = if i % 2 == 0 {
                BlockRequest::read(i, 4)
            } else {
                w(i)
            };
            let da = a.decide(&req);
            let db = b.decide(&req);
            if req.op == IoOp::Write {
                assert_eq!(da, db, "write {i}");
            } else {
                let ea = matches!(da, FaultDecision::Fail(IoFault::IoError { .. }));
                let eb = matches!(db, FaultDecision::Fail(IoFault::IoError { .. }));
                assert_eq!(ea, eb, "read {i}: io-error site moved");
            }
        }
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(FaultPlan::from_seed(99), FaultPlan::from_seed(99));
        assert_ne!(FaultPlan::from_seed(99), FaultPlan::from_seed(100));
    }

    #[test]
    fn rate_changes_do_not_shift_other_fault_sites() {
        // With tearing disabled, errors land at the same request indices as
        // with tearing enabled (the three draws per request keep streams
        // aligned).
        let base = FaultPlan::none(1234).with_io_errors(0.05);
        let noisy = base
            .clone()
            .with_torn_writes(0.3)
            .with_latency_spikes(0.9, 5);
        let mut a = FaultInjector::new(base);
        let mut b = FaultInjector::new(noisy);
        for i in 0..1000 {
            let da = a.decide(&w(i));
            let db = b.decide(&w(i));
            let ea = matches!(da, FaultDecision::Fail(IoFault::IoError { .. }));
            let eb = matches!(db, FaultDecision::Fail(IoFault::IoError { .. }));
            assert_eq!(ea, eb, "request {i}");
        }
    }
}
