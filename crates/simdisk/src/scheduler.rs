//! Request merging and dispatch ordering.
//!
//! Models the behaviour the paper leans on in §V-C.1: "the scheduler
//! underlying file systems can not merge the fragmentary requests on disk".
//! Contiguously-placed data produces adjacent requests which coalesce into a
//! handful of large transfers; fragmented placement produces requests the
//! elevator cannot merge, each paying positioning cost.

use crate::request::BlockRequest;

/// Tuning knobs for the scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Whether adjacent requests are coalesced (Linux elevators do this;
    /// disabling it isolates the merging effect in ablation benches).
    pub merge: bool,
    /// Largest merged request, in blocks (Linux `max_sectors_kb` analogue).
    pub max_merged_blocks: u64,
    /// Whether the dispatch order is C-LOOK (ascending elevator sweep) or
    /// strict arrival order.
    pub elevator: bool,
    /// Software/RPC overhead charged per *submitted* request, in ns.
    /// Models the per-request client-RPC + server-queue cost a parallel
    /// file system pays before a request ever reaches the elevator — the
    /// reason collective I/O's few 40 MB requests beat thousands of small
    /// ones even when the elevator would merge them (§V-C.2).
    pub per_request_ns: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            merge: true,
            // 1024 blocks * 4 KiB = 4 MiB max request, a common upper bound.
            max_merged_blocks: 1024,
            elevator: true,
            per_request_ns: 0,
        }
    }
}

/// A batch scheduler: collects the requests of one submission window (a
/// "queue plug"), sorts and merges them, and yields dispatch order.
#[derive(Debug, Clone, Default)]
pub struct IoScheduler {
    pub config: SchedulerConfig,
}

impl IoScheduler {
    pub fn new(config: SchedulerConfig) -> Self {
        Self { config }
    }

    /// Order and merge one batch of requests, returning the dispatch list.
    ///
    /// With the elevator enabled the batch is served in one ascending sweep
    /// starting from `head` and wrapping (C-LOOK); merging then coalesces
    /// adjacent same-direction requests up to the size cap.
    pub fn schedule(&self, head: u64, mut batch: Vec<BlockRequest>) -> Vec<BlockRequest> {
        if batch.is_empty() {
            return batch;
        }
        if self.config.elevator {
            // C-LOOK: ascending from the head position, then wrap to the
            // lowest outstanding request.
            batch.sort_by_key(|r| (r.start < head, r.start));
        }
        if !self.config.merge {
            return batch;
        }
        let mut out: Vec<BlockRequest> = Vec::with_capacity(batch.len());
        for req in batch {
            if let Some(last) = out.last_mut() {
                if last.can_merge(&req) && last.len + req.len <= self.config.max_merged_blocks {
                    last.merge(&req);
                    continue;
                }
            }
            out.push(req);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoOp;

    fn sched() -> IoScheduler {
        IoScheduler::new(SchedulerConfig::default())
    }

    #[test]
    fn merges_contiguous_run_submitted_out_of_order() {
        let batch = vec![
            BlockRequest::write(14, 2),
            BlockRequest::write(10, 4),
            BlockRequest::write(16, 4),
        ];
        let out = sched().schedule(0, batch);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].start, 10);
        assert_eq!(out[0].len, 10);
        assert_eq!(out[0].merged, 3);
    }

    #[test]
    fn does_not_merge_across_gaps() {
        let batch = vec![BlockRequest::write(10, 2), BlockRequest::write(100, 2)];
        let out = sched().schedule(0, batch);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn does_not_merge_reads_with_writes() {
        let batch = vec![BlockRequest::write(10, 2), BlockRequest::read(12, 2)];
        let out = sched().schedule(0, batch);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].op, IoOp::Write);
    }

    #[test]
    fn respects_max_merged_size() {
        let cfg = SchedulerConfig {
            max_merged_blocks: 4,
            ..SchedulerConfig::default()
        };
        let s = IoScheduler::new(cfg);
        let batch = vec![
            BlockRequest::read(0, 3),
            BlockRequest::read(3, 3),
            BlockRequest::read(6, 3),
        ];
        let out = s.schedule(0, batch);
        // 3+3 exceeds 4, so nothing merges.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn clook_sweeps_up_from_head_then_wraps() {
        let batch = vec![
            BlockRequest::read(5, 1),
            BlockRequest::read(50, 1),
            BlockRequest::read(20, 1),
        ];
        let out = sched().schedule(10, batch);
        let starts: Vec<u64> = out.iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![20, 50, 5]);
    }

    #[test]
    fn merging_disabled_preserves_requests() {
        let cfg = SchedulerConfig {
            merge: false,
            ..SchedulerConfig::default()
        };
        let s = IoScheduler::new(cfg);
        let batch = vec![BlockRequest::read(0, 2), BlockRequest::read(2, 2)];
        assert_eq!(s.schedule(0, batch).len(), 2);
    }

    #[test]
    fn arrival_order_when_elevator_disabled() {
        let cfg = SchedulerConfig {
            elevator: false,
            merge: false,
            ..Default::default()
        };
        let s = IoScheduler::new(cfg);
        let batch = vec![BlockRequest::read(50, 1), BlockRequest::read(5, 1)];
        let out = s.schedule(0, batch);
        assert_eq!(out[0].start, 50);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(sched().schedule(0, vec![]).is_empty());
    }
}
