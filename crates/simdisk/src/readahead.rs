//! Linux-style ramping readahead.
//!
//! §V-D.1 of the paper observes that with embedded directories "the size of
//! the prefetching window is gradually enlarged when it correctly predicts
//! the blocks to be used", which merges individual readdir-stat operations
//! into a few large reads. This module reproduces that ramp: the window
//! doubles on every sequentially-detected read and collapses to the initial
//! size whenever the pattern breaks.

use crate::BlockNo;

/// State of the per-disk readahead heuristic.
#[derive(Debug, Clone)]
pub struct Readahead {
    /// Initial (and post-reset) window, in blocks.
    pub initial_blocks: u64,
    /// Ramp ceiling, in blocks.
    pub max_blocks: u64,
    window: u64,
    /// Block just past the last sequential read, if any.
    next_expected: Option<BlockNo>,
}

impl Default for Readahead {
    fn default() -> Self {
        // Linux defaults: 16 KiB initial, 128 KiB max (4 KiB blocks);
        // generous maximum mirrors modern tunings and the paper's ext3 MDS.
        Self::new(4, 64)
    }
}

impl Readahead {
    pub fn new(initial_blocks: u64, max_blocks: u64) -> Self {
        assert!(initial_blocks > 0 && max_blocks >= initial_blocks);
        Self {
            initial_blocks,
            max_blocks,
            window: initial_blocks,
            next_expected: None,
        }
    }

    /// Record a read at `start..start+len` and return how many blocks of
    /// readahead to pull in beyond the request (0 when the access pattern is
    /// not sequential).
    pub fn on_read(&mut self, start: BlockNo, len: u64) -> u64 {
        let sequential = self.next_expected == Some(start);
        self.next_expected = Some(start + len);
        if sequential {
            self.window = (self.window * 2).min(self.max_blocks);
            self.window
        } else {
            self.window = self.initial_blocks;
            0
        }
    }

    /// Current window size in blocks (exposed for tests and stats).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Forget the access history (e.g. after a burst of writes).
    pub fn reset(&mut self) {
        self.window = self.initial_blocks;
        self.next_expected = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_gets_no_readahead() {
        let mut ra = Readahead::new(4, 64);
        assert_eq!(ra.on_read(100, 2), 0);
    }

    #[test]
    fn sequential_reads_ramp_window() {
        let mut ra = Readahead::new(4, 64);
        ra.on_read(0, 2);
        assert_eq!(ra.on_read(2, 2), 8);
        assert_eq!(ra.on_read(4, 2), 16);
        assert_eq!(ra.on_read(6, 2), 32);
        assert_eq!(ra.on_read(8, 2), 64);
        // Ceiling.
        assert_eq!(ra.on_read(10, 2), 64);
    }

    #[test]
    fn random_read_resets_ramp() {
        let mut ra = Readahead::new(4, 64);
        ra.on_read(0, 2);
        ra.on_read(2, 2);
        assert_eq!(ra.on_read(1000, 2), 0);
        // Ramp restarts from the initial size.
        assert_eq!(ra.on_read(1002, 2), 8);
    }

    #[test]
    fn reset_clears_history() {
        let mut ra = Readahead::new(4, 64);
        ra.on_read(0, 2);
        ra.reset();
        assert_eq!(ra.on_read(2, 2), 0);
    }
}
