//! Parametric mechanical model of a rotating disk.

use crate::{BlockNo, Nanos};

/// Geometry and timing parameters of one simulated disk.
///
/// The service-time model is the classic three-component decomposition:
///
/// * **seek**: `0` if the head is already on the target cylinder, otherwise
///   `settle + k·√(cylinder distance)` — the square-root regime covers the
///   accelerate/decelerate phase of short and medium seeks and degrades
///   gracefully to long seeks;
/// * **rotation**: half a revolution on average after any repositioning;
///   skipped entirely when the access continues exactly where the previous
///   one ended (the head is already in position and streaming);
/// * **transfer**: `bytes / media_rate`.
///
/// Defaults are calibrated against the paper's testbed ("peak performance of
/// an individual disk is about 170.2 MB/s for sequential read and 171.3 MB/s
/// for sequential write", §V-B) with 7200-rpm-class mechanics.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    /// Bytes per block (the file systems in the paper use 4 KiB blocks).
    pub block_size: u64,
    /// Total capacity in blocks.
    pub blocks: u64,
    /// Number of cylinders the LBA space is spread over.
    pub cylinders: u64,
    /// Head settle time charged on every repositioning, in ns.
    pub settle_ns: Nanos,
    /// Seek coefficient: ns per sqrt(cylinder).
    pub seek_ns_per_sqrt_cyl: f64,
    /// Spindle speed, revolutions per minute.
    pub rpm: u64,
    /// Sustained media transfer rate in bytes per second (outer zone).
    pub media_bytes_per_sec: u64,
    /// Zoned bit recording: the innermost cylinder's transfer rate as a
    /// fraction of the outermost's (real disks run ~0.5–0.6; 1.0 disables
    /// zoning). Transfer rate falls linearly with cylinder number.
    pub zbr_inner_rate: f64,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        // ~64 GiB of 4 KiB blocks over 100k cylinders: plenty of LBA space
        // for every experiment while keeping seek distances realistic.
        Self {
            block_size: 4096,
            blocks: 16 * 1024 * 1024,
            cylinders: 100_000,
            settle_ns: 800_000,             // 0.8 ms
            seek_ns_per_sqrt_cyl: 45_000.0, // ~9 ms average seek
            rpm: 7200,
            media_bytes_per_sec: 170 * 1024 * 1024,
            zbr_inner_rate: 1.0,
        }
    }
}

impl DiskGeometry {
    /// Geometry with a different capacity but default mechanics.
    pub fn with_blocks(blocks: u64) -> Self {
        Self {
            blocks,
            ..Self::default()
        }
    }

    /// Blocks that share one cylinder (at least 1).
    pub fn blocks_per_cylinder(&self) -> u64 {
        self.blocks.div_ceil(self.cylinders).max(1)
    }

    /// Cylinder holding `block`.
    pub fn cylinder_of(&self, block: BlockNo) -> u64 {
        block / self.blocks_per_cylinder()
    }

    /// Time for one full platter revolution, in ns.
    pub fn revolution_ns(&self) -> Nanos {
        60_000_000_000 / self.rpm
    }

    /// Average rotational latency (half a revolution), in ns.
    pub fn avg_rotation_ns(&self) -> Nanos {
        self.revolution_ns() / 2
    }

    /// Seek time between two blocks, in ns. Zero within a cylinder.
    pub fn seek_ns(&self, from: BlockNo, to: BlockNo) -> Nanos {
        let a = self.cylinder_of(from);
        let b = self.cylinder_of(to);
        let d = a.abs_diff(b);
        if d == 0 {
            return 0;
        }
        self.settle_ns + (self.seek_ns_per_sqrt_cyl * (d as f64).sqrt()) as Nanos
    }

    /// Pure media transfer time for `blocks` contiguous blocks at the
    /// outer zone, in ns.
    pub fn transfer_ns(&self, blocks: u64) -> Nanos {
        let bytes = blocks * self.block_size;
        ((bytes as f64 / self.media_bytes_per_sec as f64) * 1e9) as Nanos
    }

    /// Media transfer time for `blocks` starting at `start`, accounting
    /// for zoned bit recording (inner cylinders are slower).
    pub fn transfer_ns_at(&self, start: BlockNo, blocks: u64) -> Nanos {
        if self.zbr_inner_rate >= 1.0 {
            return self.transfer_ns(blocks);
        }
        // Rate at the run's midpoint cylinder (runs are short relative to
        // zone widths; a per-zone integral would change nothing visible).
        let mid = self.cylinder_of(start + blocks / 2) as f64 / self.cylinders as f64;
        let factor = 1.0 - (1.0 - self.zbr_inner_rate) * mid;
        (self.transfer_ns(blocks) as f64 / factor) as Nanos
    }

    /// Cylinder distance below which the angular (serpentine) model holds;
    /// longer seeks lose rotational phase and pay the average latency.
    pub const ANGULAR_SEEK_CYLINDERS: u64 = 4;

    /// Full positioning cost from `head` to `target`, in ns. Zero when the
    /// access is exactly sequential (the head is streaming).
    ///
    /// Near the head (same cylinder or a short track-to-track hop) the cost
    /// is the *angular* distance to the target sector — on a serpentine
    /// layout, skipping forward over a gap costs the same platter angle as
    /// reading through it, which is why skip-sequential access runs near
    /// full-sequential bandwidth on real disks. Skipping backwards costs
    /// most of a revolution. A long seek loses rotational phase and pays
    /// the seek curve plus the average rotational latency.
    pub fn position_ns(&self, head: BlockNo, target: BlockNo) -> Nanos {
        if head == target {
            return 0;
        }
        let cyl_dist = self.cylinder_of(head).abs_diff(self.cylinder_of(target));
        let seek = self.seek_ns(head, target);
        if cyl_dist > Self::ANGULAR_SEEK_CYLINDERS {
            return seek + self.avg_rotation_ns();
        }
        // Near hop: rotational phase is preserved. The cost is the angular
        // gap between the sectors (modulo the track — the head switches
        // tracks while the platter turns); if the track-switch settle time
        // exceeds the gap, the sector is missed and full revolutions are
        // added until it comes around again.
        let bpc = self.blocks_per_cylinder();
        let angular = ((target % bpc) + bpc - (head % bpc)) % bpc;
        let gap = (self.revolution_ns() as f64 * angular as f64 / bpc as f64) as Nanos;
        let settle = if cyl_dist > 0 { self.settle_ns } else { 0 };
        if settle <= gap {
            gap
        } else {
            let rev = self.revolution_ns();
            gap + (settle - gap).div_ceil(rev) * rev
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_positioning_is_free() {
        let g = DiskGeometry::default();
        assert_eq!(g.position_ns(100, 100), 0);
    }

    #[test]
    fn forward_skip_on_track_costs_fractional_rotation() {
        let g = DiskGeometry::default();
        let one = g.position_ns(100, 101);
        assert!(one > 0);
        assert!(one < g.avg_rotation_ns(), "short hop is cheaper than avg");
        let far = g.position_ns(100, 150);
        assert!(far > one, "longer angular gap costs more");
    }

    #[test]
    fn backward_skip_on_track_costs_most_of_a_revolution() {
        let g = DiskGeometry::default();
        let back = g.position_ns(101, 100);
        assert!(back > g.revolution_ns() * 9 / 10);
    }

    #[test]
    fn cylinder_switch_pays_seek_plus_avg_rotation() {
        let g = DiskGeometry::default();
        let far = g.blocks_per_cylinder() * 100;
        assert!(g.position_ns(0, far) >= g.seek_ns(0, far) + g.avg_rotation_ns());
    }

    #[test]
    fn seek_grows_with_distance() {
        let g = DiskGeometry::default();
        let near = g.seek_ns(0, g.blocks_per_cylinder() * 10);
        let far = g.seek_ns(0, g.blocks_per_cylinder() * 10_000);
        assert!(far > near);
        assert!(near > 0);
    }

    #[test]
    fn seek_is_symmetric() {
        let g = DiskGeometry::default();
        assert_eq!(g.seek_ns(0, 500_000), g.seek_ns(500_000, 0));
    }

    #[test]
    fn default_media_rate_matches_paper_disk() {
        let g = DiskGeometry::default();
        // 170 MiB transferred in ~1 second.
        let ns = g.transfer_ns(170 * 1024 * 1024 / g.block_size);
        assert!((ns as f64 - 1e9).abs() < 1e7, "got {ns}");
    }

    #[test]
    fn zbr_slows_inner_cylinders() {
        let mut g = DiskGeometry {
            zbr_inner_rate: 0.5,
            ..DiskGeometry::default()
        };
        let outer = g.transfer_ns_at(0, 256);
        let inner = g.transfer_ns_at(g.blocks - 512, 256);
        assert!(inner > outer, "inner {inner} should exceed outer {outer}");
        // Innermost rate approaches half the outer rate.
        assert!((inner as f64 / outer as f64) > 1.8);
        // Disabled zoning is exactly uniform.
        g.zbr_inner_rate = 1.0;
        assert_eq!(
            g.transfer_ns_at(0, 256),
            g.transfer_ns_at(g.blocks - 512, 256)
        );
    }

    #[test]
    fn rotation_for_7200rpm() {
        let g = DiskGeometry::default();
        assert_eq!(g.revolution_ns(), 8_333_333);
        assert_eq!(g.avg_rotation_ns(), 4_166_666);
    }

    #[test]
    fn cylinder_mapping_covers_disk() {
        let g = DiskGeometry::default();
        assert!(g.cylinder_of(g.blocks - 1) <= g.cylinders);
        assert_eq!(g.cylinder_of(0), 0);
    }
}
