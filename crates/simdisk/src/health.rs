//! The per-slot disk health state machine.
//!
//! A fleet's disks are not merely "alive" or "dead": they are brought in
//! (`Absent → Healthy`), gracefully evacuated (`Healthy → Draining →
//! Absent`), die outright (`→ Failed`), and are rebuilt onto replacement
//! media (`Failed → Rebuilding → Healthy`). The state lives with the
//! *slot* (bay), not the device — a replacement drive inherits the slot's
//! state trajectory. The file-system layer owns the authoritative vector
//! of these states and mirrors them lock-free onto the write hot path;
//! this module only defines the machine itself so every layer (allocator
//! targeting, read routing, fsck annotation, scrubbing, benches) agrees
//! on what each state permits.

use std::fmt;

/// Lifecycle state of one disk bay (OST slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum DiskHealth {
    /// In service: accepts new placements, serves reads and writes.
    Healthy = 0,
    /// Being evacuated: serves IO to existing data, refuses new
    /// placements. Ends in `Absent` once the evacuation completes.
    Draining = 1,
    /// Replacement media spinning, content being reconstructed from
    /// redundancy. Serves IO to already-rebuilt data; no new placements.
    Rebuilding = 2,
    /// Dead device: every request errors until the drive is replaced.
    Failed = 3,
    /// Empty bay: no device. Invisible to placement and IO.
    Absent = 4,
}

impl DiskHealth {
    /// Decode the lock-free mirror's `u8` (inverse of `as u8`).
    pub fn from_u8(v: u8) -> DiskHealth {
        match v {
            0 => DiskHealth::Healthy,
            1 => DiskHealth::Draining,
            2 => DiskHealth::Rebuilding,
            3 => DiskHealth::Failed,
            _ => DiskHealth::Absent,
        }
    }

    /// May allocators place *new* data here (file creation, defrag and
    /// drain destinations, tier replicas/parity)?
    pub fn accepts_placements(self) -> bool {
        self == DiskHealth::Healthy
    }

    /// Does the device service IO to data it already holds?
    pub fn serves_io(self) -> bool {
        matches!(
            self,
            DiskHealth::Healthy | DiskHealth::Draining | DiskHealth::Rebuilding
        )
    }

    /// Is the primary copy on this bay unreliable, so reads must route
    /// through redundancy (replicas / stripe reconstruction)?
    pub fn degraded(self) -> bool {
        matches!(self, DiskHealth::Failed | DiskHealth::Rebuilding)
    }

    /// The legal transitions of the lifecycle machine. Any state may jump
    /// to `Failed` (disks die whenever they please, including mid-drain
    /// and mid-rebuild); everything else is constrained:
    ///
    /// ```text
    /// Absent → Healthy            (add_ost: bay populated)
    /// Healthy → Draining          (drain_ost begins)
    /// Draining → Healthy | Absent (drain cancelled / completed)
    /// Failed → Rebuilding         (replacement drive inserted)
    /// Rebuilding → Healthy        (rebuild completed)
    /// ```
    pub fn can_transition(self, to: DiskHealth) -> bool {
        use DiskHealth::*;
        if self == to {
            return true; // idempotent re-assertion
        }
        match (self, to) {
            (_, Failed) => self != Absent,
            (Absent, Healthy) => true,
            (Healthy, Draining) => true,
            (Draining, Healthy) | (Draining, Absent) => true,
            (Failed, Rebuilding) => true,
            (Rebuilding, Healthy) => true,
            _ => false,
        }
    }
}

impl fmt::Display for DiskHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiskHealth::Healthy => "healthy",
            DiskHealth::Draining => "draining",
            DiskHealth::Rebuilding => "rebuilding",
            DiskHealth::Failed => "failed",
            DiskHealth::Absent => "absent",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::DiskHealth::*;
    use super::*;

    #[test]
    fn u8_roundtrip() {
        for h in [Healthy, Draining, Rebuilding, Failed, Absent] {
            assert_eq!(DiskHealth::from_u8(h as u8), h);
        }
    }

    #[test]
    fn lifecycle_walk_is_legal() {
        // Bay populated, drained out, repopulated, dies, rebuilt.
        let walk = [
            Absent, Healthy, Draining, Absent, Healthy, Failed, Rebuilding, Healthy,
        ];
        for w in walk.windows(2) {
            assert!(w[0].can_transition(w[1]), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn illegal_jumps_are_rejected() {
        assert!(!Absent.can_transition(Draining));
        assert!(!Absent.can_transition(Failed), "an empty bay cannot die");
        assert!(!Healthy.can_transition(Absent), "must drain first");
        assert!(!Failed.can_transition(Healthy), "must rebuild first");
        assert!(!Rebuilding.can_transition(Draining));
        assert!(!Healthy.can_transition(Rebuilding));
    }

    #[test]
    fn any_populated_state_can_fail() {
        for h in [Healthy, Draining, Rebuilding, Failed] {
            assert!(h.can_transition(Failed), "{h}");
        }
    }

    #[test]
    fn permissions_match_states() {
        assert!(Healthy.accepts_placements());
        for h in [Draining, Rebuilding, Failed, Absent] {
            assert!(!h.accepts_placements(), "{h}");
        }
        assert!(Draining.serves_io());
        assert!(!Failed.serves_io());
        assert!(!Absent.serves_io());
        assert!(Failed.degraded());
        assert!(Rebuilding.degraded());
        assert!(!Draining.degraded());
    }
}
