//! A bounded block cache with LRU eviction.
//!
//! Caches whole blocks brought in by reads and readahead; a read fully
//! covered by cached blocks is a memory hit and costs no disk time. Writes
//! update the cache (the MDS in the paper runs synchronous writes, so dirty
//! data still goes to the platter — the cache only short-circuits reads).

use crate::BlockNo;
use std::collections::{BTreeMap, HashMap};

/// Fixed-capacity LRU block cache.
#[derive(Debug)]
pub struct BlockCache {
    capacity: usize,
    /// block -> LRU tick of last touch (each touch gets a fresh tick, so
    /// ticks are unique and double as keys into `order`).
    blocks: HashMap<BlockNo, u64>,
    /// tick -> block, oldest first: the eviction order. Kept in lockstep
    /// with `blocks` so eviction pops the front instead of scanning.
    order: BTreeMap<u64, BlockNo>,
    tick: u64,
}

impl BlockCache {
    /// `capacity` is in blocks; 0 disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            blocks: HashMap::with_capacity(capacity.min(1 << 20)),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// True if every block of `start..start+len` is cached. Touches the
    /// blocks (LRU refresh) when they all hit.
    pub fn contains_range(&mut self, start: BlockNo, len: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if !(start..start + len).all(|b| self.blocks.contains_key(&b)) {
            return false;
        }
        for b in start..start + len {
            self.touch(b);
        }
        true
    }

    /// Length of the contiguously-cached run starting at `start`, capped at
    /// `max` (the readahead pipeline's "runway").
    pub fn cached_run_len(&self, start: BlockNo, max: u64) -> u64 {
        let mut n = 0;
        while n < max && self.blocks.contains_key(&(start + n)) {
            n += 1;
        }
        n
    }

    /// Insert a run of blocks, evicting least-recently-used blocks beyond
    /// capacity.
    pub fn insert_range(&mut self, start: BlockNo, len: u64) {
        if self.capacity == 0 {
            return;
        }
        for b in start..start + len {
            self.touch(b);
        }
        self.evict();
    }

    /// Drop a run of blocks (e.g. after they are freed on disk).
    pub fn invalidate_range(&mut self, start: BlockNo, len: u64) {
        for b in start..start + len {
            if let Some(t) = self.blocks.remove(&b) {
                self.order.remove(&t);
            }
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.order.clear();
    }

    /// (Re)insert one block at the fresh end of the LRU order.
    fn touch(&mut self, b: BlockNo) {
        self.tick += 1;
        if let Some(old) = self.blocks.insert(b, self.tick) {
            self.order.remove(&old);
        }
        self.order.insert(self.tick, b);
    }

    fn evict(&mut self) {
        while self.blocks.len() > self.capacity {
            let Some((_, victim)) = self.order.pop_first() else {
                break;
            };
            self.blocks.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = BlockCache::new(16);
        c.insert_range(10, 4);
        assert!(c.contains_range(10, 4));
        assert!(c.contains_range(11, 2));
    }

    #[test]
    fn partial_coverage_is_a_miss() {
        let mut c = BlockCache::new(16);
        c.insert_range(10, 4);
        assert!(!c.contains_range(12, 4));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = BlockCache::new(0);
        c.insert_range(0, 4);
        assert!(!c.contains_range(0, 1));
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_is_lru() {
        let mut c = BlockCache::new(4);
        c.insert_range(0, 4); // blocks 0..4
        assert!(c.contains_range(0, 2)); // refresh 0,1
        c.insert_range(100, 2); // evicts 2,3 (least recently used)
        assert!(c.contains_range(0, 2));
        assert!(!c.contains_range(2, 1));
        assert!(c.contains_range(100, 2));
    }

    #[test]
    fn invalidate_removes_blocks() {
        let mut c = BlockCache::new(16);
        c.insert_range(0, 8);
        c.invalidate_range(2, 2);
        assert!(!c.contains_range(0, 8));
        assert!(c.contains_range(0, 2));
        assert!(c.contains_range(4, 4));
    }

    #[test]
    fn capacity_bound_holds() {
        let mut c = BlockCache::new(8);
        for i in 0..10 {
            c.insert_range(i * 10, 3);
        }
        assert!(c.len() <= 8);
    }
}
