//! Per-command service-time distribution.
//!
//! Throughput alone hides the fragmentation story's other half: a
//! fragmented placement turns a stream of ~100 µs transfers into a stream
//! of multi-millisecond positionings. The histogram records every
//! dispatched command's service time in logarithmic buckets so benches can
//! report p50/p95/p99 alongside MiB/s.

use crate::Nanos;

/// Logarithmic histogram of service times: bucket `i` covers
/// `[2^i µs, 2^(i+1) µs)`, with the first bucket catching everything below
/// 1 µs and the last everything above ~2 s.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    total_ns: Nanos,
    max_ns: Nanos,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(ns: Nanos) -> usize {
        let us = ns / 1_000;
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(31)
        }
    }

    /// Record one command's service time.
    pub fn record(&mut self, ns: Nanos) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean service time in ns (0 for an empty histogram).
    pub fn mean_ns(&self) -> Nanos {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    pub fn max_ns(&self) -> Nanos {
        self.max_ns
    }

    /// Approximate percentile (upper bucket bound), `q` in 0.0–1.0.
    pub fn percentile_ns(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i: 2^(i) µs (bucket 0 = 1 µs).
                return (1u64 << i) * 1_000;
            }
        }
        self.max_ns
    }

    /// Merge another histogram into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000); // 1 ms
        h.record(3_000_000); // 3 ms
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_ns(), 2_000_000);
        assert_eq!(h.max_ns(), 3_000_000);
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100_000); // 100 µs
        }
        h.record(10_000_000); // one 10 ms straggler
        let p50 = h.percentile_ns(0.50);
        let p99 = h.percentile_ns(0.99);
        let p999 = h.percentile_ns(0.999);
        assert!((100_000..10_000_000).contains(&p50), "p50 {p50}");
        assert!(p99 < 10_000_000, "p99 {p99}");
        assert!(p999 >= 8_000_000, "p99.9 {p999}");
    }

    #[test]
    fn sub_microsecond_lands_in_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        assert_eq!(h.percentile_ns(1.0), 1_000);
    }

    #[test]
    fn absorb_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000_000);
        b.record(5_000_000);
        a.absorb(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 5_000_000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.percentile_ns(0.99), 0);
    }
}
