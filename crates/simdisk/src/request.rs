//! Block-level I/O requests submitted to a [`crate::Disk`].

use crate::BlockNo;

/// Direction of a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IoOp {
    /// Read blocks from the platter (may be satisfied by cache/readahead).
    Read,
    /// Write blocks to the platter.
    Write,
}

/// A request for `len` contiguous physical blocks starting at `start`.
///
/// Requests are what the file system layers hand to the scheduler; after
/// merging, one request may represent several original operations (the
/// original count is preserved in [`BlockRequest::merged`] so access-count
/// accounting can distinguish issued operations from dispatched commands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    pub op: IoOp,
    pub start: BlockNo,
    pub len: u64,
    /// Number of original requests folded into this one (>= 1).
    pub merged: u32,
    /// Per-request readahead context (overrides the batch context): the
    /// open file / stream this read belongs to, so interleaved sequential
    /// streams each keep their own readahead ramp.
    pub ra: Option<u64>,
}

impl BlockRequest {
    /// A fresh (unmerged) request.
    pub fn new(op: IoOp, start: BlockNo, len: u64) -> Self {
        debug_assert!(len > 0, "zero-length block request");
        Self {
            op,
            start,
            len,
            merged: 1,
            ra: None,
        }
    }

    /// Attach a readahead context to this request.
    pub fn with_ctx(mut self, ctx: u64) -> Self {
        self.ra = Some(ctx);
        self
    }

    /// Convenience constructor for reads.
    pub fn read(start: BlockNo, len: u64) -> Self {
        Self::new(IoOp::Read, start, len)
    }

    /// Convenience constructor for writes.
    pub fn write(start: BlockNo, len: u64) -> Self {
        Self::new(IoOp::Write, start, len)
    }

    /// First block past the end of this request.
    pub fn end(&self) -> BlockNo {
        self.start + self.len
    }

    /// Whether `other` starts exactly where `self` ends and has the same
    /// direction, i.e. the two can be coalesced into one disk command.
    pub fn can_merge(&self, other: &BlockRequest) -> bool {
        self.op == other.op && self.end() == other.start
    }

    /// Extend `self` to also cover `other`. Caller must check
    /// [`BlockRequest::can_merge`] first.
    pub fn merge(&mut self, other: &BlockRequest) {
        debug_assert!(self.can_merge(other));
        self.len += other.len;
        self.merged += other.merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adjacent_same_op() {
        let mut a = BlockRequest::write(10, 4);
        let b = BlockRequest::write(14, 2);
        assert!(a.can_merge(&b));
        a.merge(&b);
        assert_eq!(a.start, 10);
        assert_eq!(a.len, 6);
        assert_eq!(a.merged, 2);
    }

    #[test]
    fn no_merge_across_ops() {
        let a = BlockRequest::write(10, 4);
        let b = BlockRequest::read(14, 2);
        assert!(!a.can_merge(&b));
    }

    #[test]
    fn no_merge_with_gap() {
        let a = BlockRequest::read(10, 4);
        let b = BlockRequest::read(15, 2);
        assert!(!a.can_merge(&b));
    }

    #[test]
    fn end_is_exclusive() {
        let a = BlockRequest::read(10, 4);
        assert_eq!(a.end(), 14);
    }
}
