//! A JBOD of independent disks, as used by the paper's IO servers.
//!
//! The file-system layer stripes file data over the array; each disk has its
//! own head, queue and clock. A parallel phase completes when the busiest
//! disk finishes, so elapsed time for a phase is the *maximum* per-disk busy
//! time over that phase — disks genuinely work in parallel.

use crate::disk::Disk;
use crate::fault::{FaultPlan, IoFault};
use crate::geometry::DiskGeometry;
use crate::request::BlockRequest;
use crate::scheduler::SchedulerConfig;
use crate::stats::DiskStats;
use crate::Nanos;

/// A set of independent simulated disks.
#[derive(Debug)]
pub struct DiskArray {
    disks: Vec<Disk>,
}

impl DiskArray {
    /// `n` identical disks with the given geometry.
    pub fn new(n: usize, geometry: DiskGeometry) -> Self {
        assert!(n > 0, "array needs at least one disk");
        Self {
            disks: (0..n).map(|_| Disk::new(geometry.clone())).collect(),
        }
    }

    /// Array with explicit scheduler config and per-disk cache size.
    pub fn with_config(
        n: usize,
        geometry: DiskGeometry,
        sched: SchedulerConfig,
        cache_blocks: usize,
    ) -> Self {
        assert!(n > 0, "array needs at least one disk");
        Self {
            disks: (0..n)
                .map(|_| Disk::with_config(geometry.clone(), sched.clone(), cache_blocks))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.disks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    pub fn disk(&self, i: usize) -> &Disk {
        &self.disks[i]
    }

    pub fn disk_mut(&mut self, i: usize) -> &mut Disk {
        &mut self.disks[i]
    }

    /// Rebuild an array from disks previously taken apart with
    /// [`DiskArray::into_disks`] (the concurrent front-end shards each
    /// member disk behind its own lock, then reassembles on quiesce).
    pub fn from_disks(disks: Vec<Disk>) -> Self {
        assert!(!disks.is_empty(), "array needs at least one disk");
        Self { disks }
    }

    /// Take the array apart into its member disks.
    pub fn into_disks(self) -> Vec<Disk> {
        self.disks
    }

    /// Submit one batch per disk (empty batches allowed); returns the
    /// elapsed wall time of the parallel round = max per-disk service time.
    pub fn submit_round(&mut self, batches: Vec<Vec<BlockRequest>>) -> Nanos {
        assert_eq!(batches.len(), self.disks.len(), "one batch per disk");
        batches
            .into_iter()
            .zip(self.disks.iter_mut())
            .map(|(batch, disk)| disk.submit_batch(batch))
            .max()
            .unwrap_or(0)
    }

    /// Fallible variant of [`DiskArray::submit_round`]: every member disk
    /// gets its batch (the disks are independent — one member faulting
    /// does not stop the others), then the first fault is reported with
    /// the index of the disk that raised it. The surviving members' IO has
    /// been serviced and persists.
    pub fn try_submit_round(
        &mut self,
        batches: Vec<Vec<BlockRequest>>,
    ) -> Result<Nanos, (usize, IoFault)> {
        assert_eq!(batches.len(), self.disks.len(), "one batch per disk");
        let mut elapsed: Nanos = 0;
        let mut first_fault = None;
        for (i, (batch, disk)) in batches.into_iter().zip(self.disks.iter_mut()).enumerate() {
            match disk.try_submit_batch(batch) {
                Ok(t) => elapsed = elapsed.max(t),
                Err(f) => {
                    if first_fault.is_none() {
                        first_fault = Some((i, f));
                    }
                }
            }
        }
        match first_fault {
            Some(f) => Err(f),
            None => Ok(elapsed),
        }
    }

    /// Install the same fault plan on every member disk, reseeded per disk
    /// (`seed + disk index`) so members fault independently but the whole
    /// array replays from one `u64`.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for (i, d) in self.disks.iter_mut().enumerate() {
            let mut p = plan.clone();
            p.seed = plan.seed.wrapping_add(i as u64);
            d.install_faults(p);
        }
    }

    /// Remove fault injectors from every member disk.
    pub fn clear_faults(&mut self) {
        for d in &mut self.disks {
            d.clear_faults();
        }
    }

    /// Restore power on every member disk after injected power cuts.
    pub fn power_restore(&mut self) {
        for d in &mut self.disks {
            d.power_restore();
        }
    }

    /// Aggregate statistics over all member disks.
    pub fn stats_total(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for d in &self.disks {
            total.absorb(d.stats());
        }
        total
    }

    /// Per-disk snapshot of statistics.
    pub fn stats_per_disk(&self) -> Vec<DiskStats> {
        self.disks.iter().map(|d| d.stats().clone()).collect()
    }

    /// Aggregate service-time histogram over all member disks.
    pub fn latency_total(&self) -> crate::latency::LatencyHistogram {
        let mut total = crate::latency::LatencyHistogram::new();
        for d in &self.disks {
            total.absorb(d.latency());
        }
        total
    }

    /// Busiest disk's total busy time (gates workload completion).
    pub fn max_busy_ns(&self) -> Nanos {
        self.disks.iter().map(|d| d.clock()).max().unwrap_or(0)
    }

    /// Drop every disk's cache (cold restart between phases).
    pub fn drop_caches(&mut self) {
        for d in &mut self.disks {
            d.drop_caches();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_elapsed_is_max_of_disks() {
        let mut a = DiskArray::new(2, DiskGeometry::default());
        // Disk 0 does a big transfer, disk 1 a tiny one.
        let t = a.submit_round(vec![
            vec![BlockRequest::write(0, 1024)],
            vec![BlockRequest::write(0, 1)],
        ]);
        let t0 = a.disk(0).clock();
        let t1 = a.disk(1).clock();
        assert_eq!(t, t0.max(t1));
        assert!(t0 > t1);
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let mut a = DiskArray::new(3, DiskGeometry::default());
        assert_eq!(a.submit_round(vec![vec![], vec![], vec![]]), 0);
    }

    #[test]
    fn stats_aggregate_across_disks() {
        let mut a = DiskArray::new(2, DiskGeometry::default());
        a.submit_round(vec![
            vec![BlockRequest::write(0, 4)],
            vec![BlockRequest::write(0, 4)],
        ]);
        let s = a.stats_total();
        assert_eq!(s.dispatched, 2);
        assert_eq!(s.bytes_written, 2 * 4 * 4096);
    }

    #[test]
    #[should_panic(expected = "one batch per disk")]
    fn batch_count_must_match_disks() {
        let mut a = DiskArray::new(2, DiskGeometry::default());
        a.submit_round(vec![vec![]]);
    }

    #[test]
    fn striping_across_more_disks_is_faster() {
        // The same 8 MiB written over 1 disk vs striped over 4.
        let blocks = 2048u64;
        let mut one = DiskArray::new(1, DiskGeometry::default());
        let t1 = one.submit_round(vec![vec![BlockRequest::write(0, blocks)]]);

        let mut four = DiskArray::new(4, DiskGeometry::default());
        let t4 = four.submit_round(
            (0..4)
                .map(|_| vec![BlockRequest::write(0, blocks / 4)])
                .collect(),
        );
        assert!(t4 < t1, "striping must reduce elapsed time");
    }
}
