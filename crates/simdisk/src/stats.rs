//! Per-disk operation statistics.
//!
//! The paper's Figure 8 reports *disk access counts* captured "by
//! intercepting the disk access in the general block layer in the kernel" —
//! i.e. after scheduler merging. [`DiskStats::dispatched`] is that number;
//! [`DiskStats::submitted`] counts requests before merging.

use crate::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated by a [`crate::Disk`] over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Requests handed to the scheduler (before merging).
    pub submitted: u64,
    /// Disk commands actually dispatched to the platter (after merging and
    /// cache hits are removed). This is the paper's "disk access count".
    pub dispatched: u64,
    /// Requests fully satisfied from the block cache / readahead window.
    pub cache_hits: u64,
    /// Dispatched commands that required head repositioning.
    pub seeks: u64,
    /// Total cylinder distance travelled by the head.
    pub seek_distance_cyl: u64,
    /// Bytes read from the platter (including readahead overshoot).
    pub bytes_read: u64,
    /// Bytes written to the platter.
    pub bytes_written: u64,
    /// Total simulated time the disk spent busy, in ns.
    pub busy_ns: Nanos,
}

impl DiskStats {
    /// Total bytes moved to/from the platter.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of dispatched commands that needed a head reposition.
    pub fn seek_ratio(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.seeks as f64 / self.dispatched as f64
        }
    }

    /// Merge another stats block into this one (used by [`crate::DiskArray`]
    /// to aggregate).
    pub fn absorb(&mut self, other: &DiskStats) {
        self.submitted += other.submitted;
        self.dispatched += other.dispatched;
        self.cache_hits += other.cache_hits;
        self.seeks += other.seeks;
        self.seek_distance_cyl += other.seek_distance_cyl;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.busy_ns += other.busy_ns;
    }

    /// Difference since an earlier snapshot of the same counter set.
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        debug_assert!(self.busy_ns >= earlier.busy_ns);
        DiskStats {
            submitted: self.submitted - earlier.submitted,
            dispatched: self.dispatched - earlier.dispatched,
            cache_hits: self.cache_hits - earlier.cache_hits,
            seeks: self.seeks - earlier.seeks,
            seek_distance_cyl: self.seek_distance_cyl - earlier.seek_distance_cyl,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            busy_ns: self.busy_ns - earlier.busy_ns,
        }
    }
}

/// Lock-free atomic counterpart of [`DiskStats`], for aggregation points
/// shared between threads (the concurrent engine's IO counters). Threads
/// [`add`](SharedDiskStats::add) per-round deltas; readers take a
/// [`snapshot`](SharedDiskStats::snapshot) at any time. Each field is
/// monotone, so relaxed ordering is sufficient: totals are exact once the
/// writers are quiescent.
#[derive(Debug, Default)]
pub struct SharedDiskStats {
    submitted: AtomicU64,
    dispatched: AtomicU64,
    cache_hits: AtomicU64,
    seeks: AtomicU64,
    seek_distance_cyl: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    busy_ns: AtomicU64,
}

impl SharedDiskStats {
    /// Accumulate a delta (typically `later.since(&earlier)` around one
    /// batch submission).
    pub fn add(&self, delta: &DiskStats) {
        self.submitted.fetch_add(delta.submitted, Ordering::Relaxed);
        self.dispatched
            .fetch_add(delta.dispatched, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(delta.cache_hits, Ordering::Relaxed);
        self.seeks.fetch_add(delta.seeks, Ordering::Relaxed);
        self.seek_distance_cyl
            .fetch_add(delta.seek_distance_cyl, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(delta.bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(delta.bytes_written, Ordering::Relaxed);
        self.busy_ns.fetch_add(delta.busy_ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters as a plain [`DiskStats`].
    pub fn snapshot(&self) -> DiskStats {
        DiskStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            seek_distance_cyl: self.seek_distance_cyl.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fields() {
        let mut a = DiskStats {
            dispatched: 3,
            busy_ns: 10,
            ..Default::default()
        };
        let b = DiskStats {
            dispatched: 2,
            busy_ns: 5,
            seeks: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.dispatched, 5);
        assert_eq!(a.busy_ns, 15);
        assert_eq!(a.seeks, 1);
    }

    #[test]
    fn since_subtracts() {
        let early = DiskStats {
            dispatched: 2,
            busy_ns: 5,
            ..Default::default()
        };
        let late = DiskStats {
            dispatched: 7,
            busy_ns: 25,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.dispatched, 5);
        assert_eq!(d.busy_ns, 20);
    }

    #[test]
    fn seek_ratio_handles_idle_disk() {
        assert_eq!(DiskStats::default().seek_ratio(), 0.0);
    }

    /// Regression for the concurrency fix: deltas added from many threads
    /// are counted exactly — no update lost, no double count.
    #[test]
    fn shared_stats_concurrent_adds_are_exact() {
        const THREADS: u64 = 8;
        const ADDS: u64 = 1000;
        let shared = std::sync::Arc::new(SharedDiskStats::default());
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    let delta = DiskStats {
                        submitted: 1,
                        dispatched: 2,
                        bytes_written: 4096,
                        busy_ns: 7,
                        ..Default::default()
                    };
                    for _ in 0..ADDS {
                        shared.add(&delta);
                    }
                });
            }
        });
        let total = shared.snapshot();
        assert_eq!(total.submitted, THREADS * ADDS);
        assert_eq!(total.dispatched, 2 * THREADS * ADDS);
        assert_eq!(total.bytes_written, 4096 * THREADS * ADDS);
        assert_eq!(total.busy_ns, 7 * THREADS * ADDS);
    }
}
