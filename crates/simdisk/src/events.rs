//! Dispatched-command event recording.
//!
//! An optional bounded recorder that captures every command the disk
//! services — the simulation-side equivalent of `blktrace`, and the data
//! source for access-timeline visualizations and debugging. Disabled by
//! default (zero overhead beyond a branch).

use crate::request::IoOp;
use crate::{BlockNo, Nanos};
use std::collections::VecDeque;

/// One serviced disk command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskEvent {
    /// Disk clock when the command started.
    pub at_ns: Nanos,
    pub op: IoOp,
    pub start: BlockNo,
    pub len: u64,
    /// Positioning + transfer time charged.
    pub service_ns: Nanos,
}

/// A bounded ring of recent disk events.
#[derive(Debug, Default)]
pub struct EventRecorder {
    events: VecDeque<DiskEvent>,
    capacity: usize,
    /// Events discarded because the ring was full.
    dropped: u64,
}

impl EventRecorder {
    /// A recorder holding up to `capacity` events (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record one event (drops the oldest when full).
    pub fn record(&mut self, event: DiskEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &DiskEvent> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forget everything recorded so far.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Nanos, start: BlockNo) -> DiskEvent {
        DiskEvent {
            at_ns: at,
            op: IoOp::Read,
            start,
            len: 1,
            service_ns: 100,
        }
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut r = EventRecorder::new(0);
        r.record(ev(1, 1));
        assert!(r.is_empty());
        assert!(!r.enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut r = EventRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.events().map(|e| e.start).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn clear_resets() {
        let mut r = EventRecorder::new(2);
        r.record(ev(1, 1));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn dropped_counter_stays_accurate_over_many_overflows() {
        let mut r = EventRecorder::new(4);
        for i in 0..1000 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 4, "ring never exceeds capacity");
        assert_eq!(r.dropped(), 996, "everything beyond capacity is counted");
        let starts: Vec<u64> = r.events().map(|e| e.start).collect();
        assert_eq!(starts, vec![996, 997, 998, 999], "survivors are the newest");
    }

    #[test]
    fn zero_capacity_never_counts_drops() {
        let mut r = EventRecorder::new(0);
        for i in 0..100 {
            r.record(ev(i, i));
        }
        assert!(r.is_empty());
        assert_eq!(
            r.dropped(),
            0,
            "a disabled recorder discards, it does not drop"
        );
    }

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let mut r = EventRecorder::new(1);
        for i in 0..10 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 9);
        assert_eq!(r.events().next().map(|e| e.start), Some(9));
    }
}
