//! Dispatched-command event recording.
//!
//! An optional bounded recorder that captures every command the disk
//! services — the simulation-side equivalent of `blktrace`, and the data
//! source for access-timeline visualizations and debugging. Disabled by
//! default (zero overhead beyond a branch).
//!
//! The recorder uses interior mutability (a mutex around the ring, an
//! atomic drop counter) so it can be shared across the concurrent engine's
//! client threads: recording takes `&self`, and no event below the
//! overflow cap is ever lost to a race.

use crate::request::IoOp;
use crate::{BlockNo, Nanos};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One serviced disk command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskEvent {
    /// Disk clock when the command started.
    pub at_ns: Nanos,
    pub op: IoOp,
    pub start: BlockNo,
    pub len: u64,
    /// Positioning + transfer time charged.
    pub service_ns: Nanos,
}

/// A bounded ring of recent disk events, shareable across threads.
#[derive(Debug, Default)]
pub struct EventRecorder {
    events: Mutex<VecDeque<DiskEvent>>,
    capacity: usize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

impl EventRecorder {
    /// A recorder holding up to `capacity` events (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 20))),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record one event (drops the oldest when full). The ring mutation
    /// and the drop count move together under the ring lock, so concurrent
    /// recorders never lose an event below the overflow cap.
    pub fn record(&self, event: DiskEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut events = self.events.lock().unwrap();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<DiskEvent> {
        self.events.lock().unwrap().iter().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().unwrap().is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Forget everything recorded so far.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(at: Nanos, start: BlockNo) -> DiskEvent {
        DiskEvent {
            at_ns: at,
            op: IoOp::Read,
            start,
            len: 1,
            service_ns: 100,
        }
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let r = EventRecorder::new(0);
        r.record(ev(1, 1));
        assert!(r.is_empty());
        assert!(!r.enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let r = EventRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn clear_resets() {
        let r = EventRecorder::new(2);
        r.record(ev(1, 1));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn dropped_counter_stays_accurate_over_many_overflows() {
        let r = EventRecorder::new(4);
        for i in 0..1000 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 4, "ring never exceeds capacity");
        assert_eq!(r.dropped(), 996, "everything beyond capacity is counted");
        let starts: Vec<u64> = r.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![996, 997, 998, 999], "survivors are the newest");
    }

    #[test]
    fn zero_capacity_never_counts_drops() {
        let r = EventRecorder::new(0);
        for i in 0..100 {
            r.record(ev(i, i));
        }
        assert!(r.is_empty());
        assert_eq!(
            r.dropped(),
            0,
            "a disabled recorder discards, it does not drop"
        );
    }

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let r = EventRecorder::new(1);
        for i in 0..10 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 9);
        assert_eq!(r.events().first().map(|e| e.start), Some(9));
    }

    /// Regression for the concurrency fix: recording from many threads at
    /// once must never lose an event while the ring has room.
    #[test]
    fn concurrent_recording_loses_nothing_below_capacity() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1000;
        let r = Arc::new(EventRecorder::new((THREADS * PER_THREAD) as usize));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.record(ev(t * PER_THREAD + i, t));
                    }
                });
            }
        });
        assert_eq!(r.len() as u64, THREADS * PER_THREAD, "no event lost");
        assert_eq!(r.dropped(), 0, "nothing below the cap counts as dropped");
        // Every thread's full contribution is present.
        let events = r.events();
        for t in 0..THREADS {
            let n = events.iter().filter(|e| e.start == t).count() as u64;
            assert_eq!(n, PER_THREAD, "thread {t} lost records");
        }
    }

    /// Above the cap, drops are counted exactly: survivors + dropped
    /// always equals the number of records submitted.
    #[test]
    fn concurrent_overflow_accounts_for_every_record() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        const CAP: usize = 64;
        let r = Arc::new(EventRecorder::new(CAP));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.record(ev(i, t));
                    }
                });
            }
        });
        assert_eq!(r.len(), CAP, "ring pinned at capacity");
        assert_eq!(
            r.len() as u64 + r.dropped(),
            THREADS * PER_THREAD,
            "survivors + dropped must account for every record"
        );
    }
}
