//! The simulated disk: head, clock, cache, readahead, statistics.

use crate::cache::BlockCache;
use crate::events::{DiskEvent, EventRecorder};
use crate::fault::{FaultDecision, FaultInjector, FaultPlan, FaultStats, IoFault};
use crate::geometry::DiskGeometry;
use crate::latency::LatencyHistogram;
use crate::readahead::Readahead;
use crate::request::{BlockRequest, IoOp};
use crate::scheduler::{IoScheduler, SchedulerConfig};
use crate::stats::DiskStats;
use crate::{BlockNo, Nanos};
use std::collections::{BTreeSet, HashMap};

/// One simulated mechanical disk.
///
/// Requests are submitted in *batches*: a batch models the requests that a
/// burst of concurrent activity places in the device queue close together in
/// time (one "queue plug"). The scheduler merges and orders the batch, then
/// each dispatched command is charged positioning + transfer time against
/// the disk clock.
///
/// Readahead state is tracked per *context* — the analogue of the kernel's
/// per-`struct file` readahead — so interleaved sequential streams (e.g.
/// ten clients each scanning their own directory) each keep their own ramp.
/// [`Disk::submit_batch`] uses context 0; callers with multiple concurrent
/// sequential streams should use [`Disk::submit_batch_ctx`].
#[derive(Debug)]
pub struct Disk {
    pub geometry: DiskGeometry,
    scheduler: IoScheduler,
    cache: BlockCache,
    ra_contexts: HashMap<u64, Readahead>,
    head: BlockNo,
    clock: Nanos,
    stats: DiskStats,
    latency: LatencyHistogram,
    recorder: EventRecorder,
    faults: Option<FaultInjector>,
    /// Whole-device death ([`Disk::fail`]): every request errors until the
    /// drive is swapped ([`Disk::replace`]). Orthogonal to the injector's
    /// power state — power can be restored, a dead drive cannot.
    failed: bool,
    /// Latent sector errors: blocks whose media content is damaged
    /// (bit rot, misdirected writes). Invisible to ordinary reads — the
    /// damage only surfaces when something *verifies* the content
    /// ([`Disk::scrub_range`]). A write over a damaged block lays down
    /// fresh content and heals it.
    damaged: BTreeSet<BlockNo>,
}

impl Disk {
    pub fn new(geometry: DiskGeometry) -> Self {
        Self::with_config(geometry, SchedulerConfig::default(), 16 * 1024)
    }

    /// Full-control constructor: scheduler config and cache capacity (in
    /// blocks; 0 disables caching and readahead hits).
    pub fn with_config(
        geometry: DiskGeometry,
        sched: SchedulerConfig,
        cache_blocks: usize,
    ) -> Self {
        Self {
            geometry,
            scheduler: IoScheduler::new(sched),
            cache: BlockCache::new(cache_blocks),
            ra_contexts: HashMap::new(),
            head: 0,
            clock: 0,
            stats: DiskStats::default(),
            latency: LatencyHistogram::new(),
            recorder: EventRecorder::new(0),
            faults: None,
            failed: false,
            damaged: BTreeSet::new(),
        }
    }

    /// Kill the device: a whole-disk failure (head crash, dropped drive).
    /// From now on every submission fails with [`IoFault::DiskFailed`];
    /// [`Disk::power_restore`] does *not* revive it — only [`Disk::replace`]
    /// does, and the replacement's media is empty.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Is the device dead from [`Disk::fail`]?
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Swap in a fresh drive for a failed one. The replacement spins up
    /// with empty platters: caches, readahead state and head position are
    /// reset, and whatever the old drive held is gone — the array must
    /// rebuild it from redundancy. Clock and cumulative statistics belong
    /// to the *slot* and carry over.
    pub fn replace(&mut self) {
        self.failed = false;
        self.head = 0;
        self.damaged.clear(); // fresh platters carry no latent errors
        self.drop_caches();
    }

    /// Damage one block's media content (latent sector error / silent
    /// corruption injection). Ordinary reads still "succeed" — the rot is
    /// only observable through [`Disk::scrub_range`] — and any write
    /// covering the block heals it.
    pub fn corrupt_block(&mut self, block: BlockNo) {
        self.damaged.insert(block);
    }

    /// Every currently-damaged block, ascending.
    pub fn damaged_blocks(&self) -> Vec<BlockNo> {
        self.damaged.iter().copied().collect()
    }

    /// The damaged blocks inside `[start, start + len)`, without charging
    /// any IO (bookkeeping queries; the scrubber uses
    /// [`Disk::scrub_range`], which pays for the verify read).
    pub fn damaged_in(&self, start: BlockNo, len: u64) -> Vec<BlockNo> {
        self.damaged.range(start..start + len).copied().collect()
    }

    /// Verify the media content of `[start, start + len)`: one sequential
    /// checksum-verify read straight off the platter (deliberately
    /// uncached — a scrub that "verified" the page cache would prove
    /// nothing), charged against the disk clock. Returns the damaged
    /// blocks found in the range. Errors with [`IoFault::DiskFailed`] on
    /// a dead device.
    pub fn scrub_range(&mut self, start: BlockNo, len: u64) -> Result<Vec<BlockNo>, IoFault> {
        if self.failed {
            return Err(IoFault::DiskFailed);
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let t =
            self.geometry.position_ns(self.head, start) + self.geometry.transfer_ns_at(start, len);
        self.head = start + len;
        self.clock += t;
        self.stats.busy_ns += t;
        self.stats.submitted += 1;
        self.stats.dispatched += 1;
        self.stats.bytes_read += len * self.geometry.block_size;
        self.latency.record(t);
        Ok(self.damaged.range(start..start + len).copied().collect())
    }

    /// Install a seeded fault-injection plan. Faults only surface through
    /// the `try_submit*` entry points; the infallible wrappers panic if a
    /// fault fires, so callers that installed faults must use `try_*`.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultInjector::new(plan));
    }

    /// Remove the fault injector (subsequent IO is fault-free).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Counters for the faults injected so far (`None` when no plan is
    /// installed).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Is the disk dead from an injected power cut?
    pub fn powered_off(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.powered_off())
    }

    /// Power the disk back on after an injected power cut. The volatile
    /// cache and readahead state are gone, as on a real restart.
    pub fn power_restore(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            f.power_restore();
        }
        self.drop_caches();
    }

    /// Enable command recording (blktrace analogue) with a bounded ring.
    pub fn enable_recording(&mut self, capacity: usize) {
        self.recorder = EventRecorder::new(capacity);
    }

    /// The event recorder (read access for visualization/diagnostics).
    pub fn recorder(&self) -> &EventRecorder {
        &self.recorder
    }

    /// Submit one batch of requests; returns the simulated time the batch
    /// took to service (the disk clock advances by the same amount).
    /// Readahead context 0 is used.
    pub fn submit_batch(&mut self, batch: Vec<BlockRequest>) -> Nanos {
        Self::expect_no_fault(self.try_submit_batch(batch))
    }

    /// Submit one batch under an explicit readahead context (one context
    /// per open file / sequential stream).
    pub fn submit_batch_ctx(&mut self, ctx: u64, batch: Vec<BlockRequest>) -> Nanos {
        Self::expect_no_fault(self.try_submit_batch_ctx(ctx, batch))
    }

    /// Submit one batch with readahead disabled — models block-at-a-time
    /// buffer-cache metadata reads (ext3 dirent and inode-table blocks get
    /// no prefetch; this is precisely the behaviour the paper's embedded
    /// directory escapes by reading directory content as one stream).
    pub fn submit_batch_raw(&mut self, batch: Vec<BlockRequest>) -> Nanos {
        Self::expect_no_fault(self.try_submit_batch_raw(batch))
    }

    /// Fallible variant of [`Disk::submit_batch`]: on an injected fault,
    /// requests *before* the faulted one have been serviced (and persist),
    /// the faulted request is dropped — or truncated, for a torn write —
    /// and the rest of the batch is lost. The disk clock still advances by
    /// whatever was serviced.
    pub fn try_submit_batch(&mut self, batch: Vec<BlockRequest>) -> Result<Nanos, IoFault> {
        self.try_submit_batch_inner(Some(0), batch)
    }

    /// Fallible variant of [`Disk::submit_batch_ctx`].
    pub fn try_submit_batch_ctx(
        &mut self,
        ctx: u64,
        batch: Vec<BlockRequest>,
    ) -> Result<Nanos, IoFault> {
        self.try_submit_batch_inner(Some(ctx), batch)
    }

    /// Fallible variant of [`Disk::submit_batch_raw`].
    pub fn try_submit_batch_raw(&mut self, batch: Vec<BlockRequest>) -> Result<Nanos, IoFault> {
        self.try_submit_batch_inner(None, batch)
    }

    fn expect_no_fault(r: Result<Nanos, IoFault>) -> Nanos {
        r.unwrap_or_else(|f| panic!("unhandled disk fault on infallible submit path: {f}"))
    }

    /// Screen the batch through the fault injector (if any), service the
    /// surviving prefix, then report the first fault.
    fn try_submit_batch_inner(
        &mut self,
        ctx: Option<u64>,
        batch: Vec<BlockRequest>,
    ) -> Result<Nanos, IoFault> {
        if self.failed {
            return Err(IoFault::DiskFailed);
        }
        let Some(mut inj) = self.faults.take() else {
            return Ok(self.submit_batch_inner(ctx, batch));
        };
        let mut survivors = Vec::with_capacity(batch.len());
        let mut spike_ns: Nanos = 0;
        let mut fault = None;
        for req in batch {
            match inj.decide(&req) {
                FaultDecision::Allow => survivors.push(req),
                FaultDecision::Delay(ns) => {
                    spike_ns += ns;
                    survivors.push(req);
                }
                FaultDecision::Fail(f) => {
                    fault = Some(f);
                    break;
                }
                FaultDecision::Tear { persisted } => {
                    fault = Some(IoFault::TornWrite {
                        start: req.start,
                        persisted,
                        requested: req.len,
                    });
                    if persisted > 0 {
                        let mut head = req;
                        head.len = persisted;
                        survivors.push(head);
                    }
                    break;
                }
            }
        }
        self.faults = Some(inj);
        let mut elapsed = self.submit_batch_inner(ctx, survivors);
        elapsed += spike_ns;
        self.clock += spike_ns;
        self.stats.busy_ns += spike_ns;
        match fault {
            Some(f) => Err(f),
            None => Ok(elapsed),
        }
    }

    fn submit_batch_inner(&mut self, ctx: Option<u64>, batch: Vec<BlockRequest>) -> Nanos {
        self.stats.submitted += batch.len() as u64;
        // Per-request software/RPC overhead is paid before merging.
        let overhead = batch.len() as Nanos * self.scheduler.config.per_request_ns;

        // Cache hits never reach the scheduler, but a sequential stream's
        // readahead pipeline keeps running: the ramp advances and the next
        // window is prefetched (async readahead) so streaming reads stay
        // ahead of the consumer.
        let mut prefetch_ns: Nanos = 0;
        let mut to_disk = Vec::with_capacity(batch.len());
        for req in batch {
            if req.op == IoOp::Read && self.cache.contains_range(req.start, req.len) {
                self.stats.cache_hits += 1;
                if let Some(c) = req.ra.or(ctx) {
                    let extra = self
                        .ra_contexts
                        .entry(c)
                        .or_default()
                        .on_read(req.start, req.len);
                    let extra = extra.min(self.geometry.blocks.saturating_sub(req.end()));
                    // Async-readahead marker: top the pipeline up only when
                    // the cached runway ahead drops below half a window, and
                    // read just the missing tail.
                    let runway = self.cache.cached_run_len(req.end(), extra);
                    if extra > 0 && runway < extra / 2 {
                        let from = req.end() + runway;
                        let fetch = extra - runway;
                        prefetch_ns += self.geometry.position_ns(self.head, from)
                            + self.geometry.transfer_ns_at(from, fetch);
                        self.cache.insert_range(from, fetch);
                        self.stats.bytes_read += fetch * self.geometry.block_size;
                        self.stats.dispatched += 1;
                        self.head = from + fetch;
                    }
                }
            } else {
                to_disk.push(req);
            }
        }

        let dispatch = self.scheduler.schedule(self.head, to_disk);
        let mut elapsed: Nanos = overhead + prefetch_ns;
        for req in dispatch {
            let at_ns = self.clock + elapsed;
            let t = self.service(ctx, req);
            self.latency.record(t);
            if self.recorder.enabled() {
                self.recorder.record(DiskEvent {
                    at_ns,
                    op: req.op,
                    start: req.start,
                    len: req.len,
                    service_ns: t,
                });
            }
            elapsed += t;
        }
        self.clock += elapsed;
        self.stats.busy_ns += elapsed;
        elapsed
    }

    /// Convenience: submit a single request (readahead context 0).
    pub fn submit(&mut self, req: BlockRequest) -> Nanos {
        self.submit_batch(vec![req])
    }

    /// Convenience: submit a single request under a readahead context.
    pub fn submit_ctx(&mut self, ctx: u64, req: BlockRequest) -> Nanos {
        self.submit_batch_ctx(ctx, vec![req])
    }

    /// Fallible variant of [`Disk::submit`].
    pub fn try_submit(&mut self, req: BlockRequest) -> Result<Nanos, IoFault> {
        self.try_submit_batch(vec![req])
    }

    /// Fallible variant of [`Disk::submit_ctx`].
    pub fn try_submit_ctx(&mut self, ctx: u64, req: BlockRequest) -> Result<Nanos, IoFault> {
        self.try_submit_batch_ctx(ctx, vec![req])
    }

    fn service(&mut self, ctx: Option<u64>, req: BlockRequest) -> Nanos {
        self.stats.dispatched += 1;
        let position = self.geometry.position_ns(self.head, req.start);
        if position > 0 {
            self.stats.seeks += 1;
            self.stats.seek_distance_cyl += self
                .geometry
                .cylinder_of(self.head)
                .abs_diff(self.geometry.cylinder_of(req.start));
        }

        let mut transfer_blocks = req.len;
        match req.op {
            IoOp::Read => {
                // Ramping readahead: overshoot sequential reads and cache
                // the extra blocks so the next sequential read hits memory.
                // A per-request context (the request's open file) overrides
                // the batch-level context.
                let extra = match req.ra.or(ctx) {
                    Some(ctx) => self
                        .ra_contexts
                        .entry(ctx)
                        .or_default()
                        .on_read(req.start, req.len),
                    None => 0,
                };
                let extra = extra.min(self.geometry.blocks.saturating_sub(req.end()));
                transfer_blocks += extra;
                self.cache.insert_range(req.start, req.len + extra);
                self.stats.bytes_read += transfer_blocks * self.geometry.block_size;
            }
            IoOp::Write => {
                self.cache.insert_range(req.start, req.len);
                self.stats.bytes_written += transfer_blocks * self.geometry.block_size;
                // Fresh content over a latent sector error heals it.
                if !self.damaged.is_empty() {
                    let healed: Vec<BlockNo> = self
                        .damaged
                        .range(req.start..req.start + req.len)
                        .copied()
                        .collect();
                    for b in healed {
                        self.damaged.remove(&b);
                    }
                }
            }
        }

        self.head = req.start + transfer_blocks;
        position + self.geometry.transfer_ns_at(req.start, transfer_blocks)
    }

    /// Current disk clock (total busy time so far), in ns.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Per-command service-time distribution.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Current head position (block).
    pub fn head(&self) -> BlockNo {
        self.head
    }

    /// Drop all cached blocks (e.g. to simulate a cold start / remount).
    pub fn drop_caches(&mut self) {
        self.cache.clear();
        self.ra_contexts.clear();
    }

    /// Invalidate cached copies of a freed range.
    pub fn invalidate(&mut self, start: BlockNo, len: u64) {
        self.cache.invalidate_range(start, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskGeometry::default())
    }

    #[test]
    fn sequential_writes_merge_into_one_dispatch() {
        let mut d = disk();
        let reqs: Vec<_> = (0..8).map(|i| BlockRequest::write(i * 4, 4)).collect();
        d.submit_batch(reqs);
        assert_eq!(d.stats().dispatched, 1);
        assert_eq!(d.stats().submitted, 8);
    }

    #[test]
    fn scattered_writes_each_pay_positioning() {
        let mut d = disk();
        let near: Vec<_> = (0..8).map(|i| BlockRequest::write(i * 4, 4)).collect();
        let t_seq = d.submit_batch(near);

        let mut d2 = disk();
        let stride = d2.geometry.blocks_per_cylinder() * 100;
        let far: Vec<_> = (0..8)
            .map(|i| BlockRequest::write((i + 1) * stride, 4))
            .collect();
        let t_rand = d2.submit_batch(far);

        assert!(
            t_rand > t_seq * 10,
            "fragmented batch must be much slower: seq={t_seq} rand={t_rand}"
        );
        assert_eq!(d2.stats().seeks, 8);
    }

    #[test]
    fn cached_read_is_free() {
        let mut d = disk();
        d.submit(BlockRequest::read(100, 4));
        let before = d.clock();
        d.submit(BlockRequest::read(100, 4));
        assert_eq!(d.clock(), before);
        assert_eq!(d.stats().cache_hits, 1);
    }

    #[test]
    fn readahead_makes_followup_sequential_read_free() {
        let mut d = disk();
        d.submit(BlockRequest::read(0, 4));
        d.submit(BlockRequest::read(4, 4)); // sequential: ramps & overshoots
        let hits = d.stats().cache_hits;
        d.submit(BlockRequest::read(8, 4)); // inside the readahead window
        assert_eq!(d.stats().cache_hits, hits + 1);
    }

    #[test]
    fn drop_caches_forces_media_access() {
        let mut d = disk();
        d.submit(BlockRequest::read(100, 4));
        d.drop_caches();
        let before = d.clock();
        d.submit(BlockRequest::read(100, 4));
        assert!(d.clock() > before);
    }

    #[test]
    fn write_then_read_hits_cache() {
        let mut d = disk();
        d.submit(BlockRequest::write(50, 4));
        let before = d.clock();
        d.submit(BlockRequest::read(50, 4));
        assert_eq!(d.clock(), before);
    }

    #[test]
    fn invalidate_evicts_written_blocks() {
        let mut d = disk();
        d.submit(BlockRequest::write(50, 4));
        d.invalidate(50, 4);
        let before = d.clock();
        d.submit(BlockRequest::read(50, 4));
        assert!(d.clock() > before);
    }

    #[test]
    fn sequential_append_stream_runs_at_media_rate() {
        let mut d = disk();
        // Reposition once, then stream.
        let total_blocks = 25_600; // 100 MiB
        let mut t = 0;
        let mut pos = 1_000_000;
        for _ in 0..100 {
            t += d.submit(BlockRequest::write(pos, total_blocks / 100));
            pos += total_blocks / 100;
        }
        let bytes = total_blocks * d.geometry.block_size;
        let mibs = crate::mib_per_sec(bytes, t);
        assert!(
            (150.0..=175.0).contains(&mibs),
            "sequential stream should run near 170 MB/s, got {mibs:.1}"
        );
    }

    #[test]
    fn readahead_contexts_are_independent() {
        // Two interleaved sequential streams: with per-context readahead
        // both ramp; the interleave does not reset them.
        let mut d = disk();
        let far = 1_000_000;
        d.submit_ctx(1, BlockRequest::read(0, 4));
        d.submit_ctx(2, BlockRequest::read(far, 4));
        d.submit_ctx(1, BlockRequest::read(4, 4)); // seq in ctx 1: ramps
        d.submit_ctx(2, BlockRequest::read(far + 4, 4)); // seq in ctx 2
        let hits = d.stats().cache_hits;
        d.submit_ctx(1, BlockRequest::read(8, 4)); // inside ctx 1 RA window
        d.submit_ctx(2, BlockRequest::read(far + 8, 4));
        assert_eq!(
            d.stats().cache_hits,
            hits + 2,
            "both streams should hit readahead"
        );
    }

    #[test]
    fn single_context_interleave_resets_ramp() {
        // Same pattern through one context: the ramp resets each switch.
        let mut d = disk();
        let far = 1_000_000;
        d.submit(BlockRequest::read(0, 4));
        d.submit(BlockRequest::read(far, 4));
        d.submit(BlockRequest::read(4, 4));
        let before = d.clock();
        d.submit(BlockRequest::read(far + 4, 4)); // miss: no RA was issued
        assert!(d.clock() > before);
    }

    #[test]
    fn failed_disk_rejects_all_io_until_replaced() {
        let mut d = disk();
        d.submit(BlockRequest::write(0, 8));
        d.fail();
        assert!(d.failed());
        assert_eq!(
            d.try_submit(BlockRequest::read(0, 4)),
            Err(IoFault::DiskFailed)
        );
        assert_eq!(
            d.try_submit(BlockRequest::write(64, 4)),
            Err(IoFault::DiskFailed)
        );
        // Power restore does not revive a dead drive.
        d.power_restore();
        assert!(d.failed());
        assert_eq!(
            d.try_submit(BlockRequest::read(0, 4)),
            Err(IoFault::DiskFailed)
        );
        // A replacement drive services IO again, with cold caches.
        d.replace();
        assert!(!d.failed());
        let before = d.clock();
        d.submit(BlockRequest::read(0, 4));
        assert!(d.clock() > before, "replacement platters hold nothing");
    }

    #[test]
    fn latent_damage_is_invisible_until_scrubbed_and_heals_on_write() {
        let mut d = disk();
        d.submit(BlockRequest::write(100, 16));
        d.corrupt_block(104);
        d.corrupt_block(110);
        // Ordinary reads do not notice (latent == silent).
        assert!(d.try_submit(BlockRequest::read(100, 16)).is_ok());
        // A scrub read finds exactly the damaged blocks, and costs time.
        let before = d.clock();
        assert_eq!(d.scrub_range(100, 16).unwrap(), vec![104, 110]);
        assert!(d.clock() > before, "verify read is charged");
        assert_eq!(d.damaged_in(100, 16), vec![104, 110]);
        // A rewrite over one of them heals it.
        d.submit(BlockRequest::write(104, 1));
        assert_eq!(d.scrub_range(100, 16).unwrap(), vec![110]);
        assert_eq!(d.damaged_blocks(), vec![110]);
    }

    #[test]
    fn scrub_errors_on_a_dead_disk_and_replacement_media_is_clean() {
        let mut d = disk();
        d.corrupt_block(7);
        d.fail();
        assert_eq!(d.scrub_range(0, 64), Err(IoFault::DiskFailed));
        d.replace();
        assert_eq!(d.scrub_range(0, 64).unwrap(), vec![]);
        assert!(d.damaged_blocks().is_empty());
    }

    #[test]
    fn readahead_never_runs_past_end_of_disk() {
        let mut d = Disk::new(DiskGeometry::with_blocks(100));
        d.submit(BlockRequest::read(90, 4));
        d.submit(BlockRequest::read(94, 4)); // readahead clamped at block 100
        assert!(d.stats().bytes_read <= 100 * d.geometry.block_size);
    }
}
