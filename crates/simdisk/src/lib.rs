//! # mif-simdisk — a mechanical disk and disk-array simulator
//!
//! The MiF paper ([Yi et al., ICPP 2011]) measures its allocation and
//! directory-placement techniques on a SAN testbed of fabric disks. The
//! entire effect the paper reports — fragmentation is "the disk performance
//! killer" — comes from the mechanics of rotating media: a discontiguous
//! request pays a head seek plus rotational latency, while a contiguous run
//! streams at media rate and adjacent requests get merged into one large
//! transfer by the I/O scheduler.
//!
//! This crate reproduces exactly that mechanism in simulation:
//!
//! * [`DiskGeometry`] — a parametric service-time model: seek curve
//!   `settle + k·√(cylinder distance)`, rotational latency from spindle RPM,
//!   and per-byte media transfer time;
//! * [`IoScheduler`] — request merging (adjacent LBAs coalesce, like the
//!   Linux elevator) plus C-LOOK dispatch ordering;
//! * [`Disk`] — head position + clock + statistics; services scheduled
//!   batches and charges simulated nanoseconds;
//! * readahead ([`Readahead`]) — a Linux-style window that doubles on
//!   sequentially-detected reads, populating the [`BlockCache`]; this is the
//!   kernel behaviour the paper credits for merging individual
//!   `readdir-stat` operations into large disk reads (§V-D.1);
//! * [`DiskArray`] — a set of independent disks (the paper's JBOD) over
//!   which the file system stripes data; elapsed time of a parallel phase is
//!   gated by the busiest disk.
//!
//! Simulated time is in nanoseconds (`u64`). The default geometry is
//! calibrated to the paper's testbed disks (~170 MB/s sequential media rate,
//! 7200 rpm class mechanics), so absolute throughputs land in a realistic
//! range, and relative results (who wins, by what factor) are governed by
//! seek-vs-stream behaviour just as on the real hardware.

//! # Example
//!
//! ```
//! use mif_simdisk::{BlockRequest, Disk, DiskGeometry, mib_per_sec};
//!
//! let mut disk = Disk::new(DiskGeometry::default());
//!
//! // A contiguous batch merges into one command and streams at media
//! // rate; a scattered batch pays a positioning per fragment.
//! let contiguous: Vec<_> = (0..64).map(|i| BlockRequest::write(i * 16, 16)).collect();
//! let t_seq = disk.submit_batch(contiguous);
//!
//! let scattered: Vec<_> = (0..64)
//!     .map(|i| BlockRequest::write(1_000_000 + i * 50_000, 16))
//!     .collect();
//! let t_scattered = disk.submit_batch(scattered);
//!
//! assert!(t_scattered > 10 * t_seq);
//! let bytes = 64 * 16 * 4096;
//! assert!(mib_per_sec(bytes, t_seq) > 100.0); // near the 170 MB/s media rate
//! ```

pub mod array;
pub mod cache;
pub mod disk;
pub mod events;
pub mod fault;
pub mod geometry;
pub mod health;
pub mod latency;
pub mod readahead;
pub mod request;
pub mod scheduler;
pub mod stats;

pub use array::DiskArray;
pub use cache::BlockCache;
pub use disk::Disk;
pub use events::{DiskEvent, EventRecorder};
pub use fault::{CorruptKind, FaultDecision, FaultInjector, FaultPlan, FaultStats, IoFault};
pub use geometry::DiskGeometry;
pub use health::DiskHealth;
pub use latency::LatencyHistogram;
pub use readahead::Readahead;
pub use request::{BlockRequest, IoOp};
pub use scheduler::{IoScheduler, SchedulerConfig};
pub use stats::{DiskStats, SharedDiskStats};

/// A physical block number on one disk.
pub type BlockNo = u64;

/// Simulated time in nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per second, for throughput conversions.
pub const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// Convert a byte count serviced in `ns` simulated nanoseconds to MiB/s.
///
/// Returns 0.0 when no time elapsed (e.g. everything was a cache hit).
pub fn mib_per_sec(bytes: u64, ns: Nanos) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (bytes as f64 / (1024.0 * 1024.0)) / (ns as f64 / NANOS_PER_SEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_per_sec_basic() {
        // 1 MiB in 1 second.
        assert!((mib_per_sec(1024 * 1024, 1_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mib_per_sec_zero_time() {
        assert_eq!(mib_per_sec(4096, 0), 0.0);
    }
}
