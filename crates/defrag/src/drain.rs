//! Layer 4: the online drain driver.
//!
//! Evacuates one bay so it can leave the population: every stripe column
//! any file keeps on the draining OST is relocated — whole-column, WAL-
//! journaled, through the same crash-safe Intent/Commit protocol as
//! defragmentation ([`crate::relocate::relocate_column`]) — onto the bays
//! currently accepting placements. A power cut at *any* point leaves the
//! system fsck-clean: recovery ([`crate::recover`]) rolls committed moves
//! forward and dangling intents back, and the interrupted drain simply
//! resumes (columns already moved are no longer on the bay).
//!
//! The driver reuses the defrag scheduler's throttle shape: a block-move
//! budget per tick with latency-driven backoff, so an evacuation rides in
//! the background instead of stealing the foreground's disk time. Unlike
//! defragmentation it cannot *skip* busy files — a drain must finish — so
//! preallocation windows are released up front (the drain is a
//! maintenance pass over a quiesced engine, exactly like fsck).

use crate::relocate::{relocate_column, Outcome, SkipReason};
use mif_core::{DiskHealth, FileSystem, OpenFile};
use mif_mds::RemapWal;
use mif_simdisk::Nanos;

/// Throttle knobs for one [`drain_ost`] pass.
#[derive(Debug, Clone, Copy)]
pub struct DrainConfig {
    /// Block-move budget per tick (copy cost ceiling).
    pub budget_blocks_per_tick: u64,
    /// Per-dispatch service time above which the driver backs off.
    pub latency_backoff_ns: Nanos,
    /// Hard cap on ticks — a stuck drain (no space anywhere) terminates.
    pub max_ticks: u64,
}

impl Default for DrainConfig {
    fn default() -> Self {
        Self {
            budget_blocks_per_tick: 8192,
            latency_backoff_ns: 40_000_000,
            max_ticks: 4096,
        }
    }
}

/// The budget never shrinks below this, so progress cannot stall.
const MIN_BUDGET_BLOCKS: u64 = 64;

/// What one [`drain_ost`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Columns relocated off the bay (data moved).
    pub columns_moved: u64,
    /// Empty columns repointed without IO.
    pub columns_retargeted: u64,
    /// Blocks copied to their new homes.
    pub blocks_moved: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Ticks that ended in a latency backoff.
    pub backoffs: u64,
    /// Relocations that found no destination run (left for a retry once
    /// space frees up; `completed` is false if any remain).
    pub no_space: u64,
    /// Simulated time spent copying data.
    pub copy_ns: Nanos,
    /// The bay is empty and left the population (`Absent`).
    pub completed: bool,
}

/// Evacuate `ost` and retire it from the population. Drives the bay
/// `Healthy → Draining` (idempotent if it already drains), relocates
/// every column off it under the tick budget, and on success completes
/// the drain (`Draining → Absent`). Returns what happened; an incomplete
/// drain (`completed == false`, out of ticks or out of space) leaves the
/// bay `Draining` — call again after freeing space.
pub fn drain_ost(
    fs: &mut FileSystem,
    wal: &mut RemapWal,
    ost: usize,
    cfg: &DrainConfig,
) -> DrainStats {
    assert!(
        fs.ost_health(ost) == DiskHealth::Draining || fs.ost_health(ost) == DiskHealth::Healthy,
        "drain of a {} bay",
        fs.ost_health(ost)
    );
    fs.begin_drain(ost);
    // A drain cannot skip busy files the way defrag does, so the windows
    // they hold (including on the draining bay) are released up front.
    fs.release_preallocations();

    let mut stats = DrainStats::default();
    let mut budget = cfg.budget_blocks_per_tick.max(MIN_BUDGET_BLOCKS);
    loop {
        // Columns still on the bay, re-scanned each tick: relocations
        // rewrite ost_maps as they go.
        let work: Vec<(OpenFile, usize)> = fs
            .file_handles()
            .into_iter()
            .flat_map(|f| {
                let map = fs.ost_map_of(f);
                map.into_iter()
                    .enumerate()
                    .filter(|&(_, o)| o as usize == ost)
                    .map(move |(col, _)| (f, col))
                    .collect::<Vec<_>>()
            })
            .collect();
        if work.is_empty() {
            break;
        }
        if stats.ticks >= cfg.max_ticks {
            return stats; // bay stays Draining; caller retries
        }
        stats.ticks += 1;
        let tick_start = fs.data_stats();
        let mut moved_this_tick = 0u64;
        let mut stuck = true;
        for (file, col) in work {
            if moved_this_tick >= budget {
                stuck = false; // budget exhausted, not out of space
                break;
            }
            let Some(dst) = pick_destination(fs) else {
                stats.no_space += 1;
                continue;
            };
            if fs.physical_layout(file, col).is_empty() {
                if fs.retarget_empty_column(file, col, dst) {
                    stats.columns_retargeted += 1;
                    stuck = false;
                }
                continue;
            }
            match relocate_column(fs, wal, file, col, dst, None) {
                Outcome::Done { txn, copy_ns } => {
                    stats.columns_moved += 1;
                    stats.blocks_moved += txn.total;
                    stats.copy_ns += copy_ns;
                    moved_this_tick += txn.total;
                    stuck = false;
                }
                Outcome::Skipped(SkipReason::NoSpace) => stats.no_space += 1,
                Outcome::Skipped(SkipReason::AlreadyContiguous) => {
                    // Raced by an unlink since the scan; nothing on the bay.
                    stuck = false;
                }
                // The driver never injects crashes; a copy fault ends the
                // pass (the bay stays Draining for a retry).
                Outcome::Crashed { .. } | Outcome::Faulted { .. } => return stats,
            }
        }
        if stuck {
            return stats; // every remaining column is out of space
        }
        // Foreground-latency sample, as in the defrag scheduler.
        let delta = fs.data_stats().since(&tick_start);
        let mean_ns = delta.busy_ns.checked_div(delta.dispatched).unwrap_or(0);
        if mean_ns > cfg.latency_backoff_ns {
            stats.backoffs += 1;
            budget = (budget / 2).max(MIN_BUDGET_BLOCKS);
        } else if budget < cfg.budget_blocks_per_tick {
            budget = (budget * 2).min(cfg.budget_blocks_per_tick);
        }
    }
    let lc = fs.lifecycle_mut();
    lc.drained_columns += stats.columns_moved + stats.columns_retargeted;
    lc.drained_blocks += stats.blocks_moved;
    fs.finish_drain(ost);
    stats.completed = true;
    stats
}

/// The evacuation target: the placement-accepting bay with the most free
/// blocks (the draining bay never accepts placements, so it is excluded
/// by construction).
fn pick_destination(fs: &FileSystem) -> Option<usize> {
    fs.active_osts()
        .into_iter()
        .map(|o| o as usize)
        .max_by_key(|&o| fs.allocator(o).free_blocks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_alloc::{PolicyKind, StreamId};
    use mif_core::FsConfig;

    fn populated_fs(osts: u32) -> (FileSystem, Vec<OpenFile>) {
        let mut fs = FileSystem::new(FsConfig::with_policy(PolicyKind::Reservation, osts));
        let mut files = Vec::new();
        for i in 0..6u64 {
            let f = fs.create(&format!("d{i}"), None);
            fs.begin_round();
            fs.write(f, StreamId::new(i as u32, 0), 0, 64 + i * 32);
            fs.end_round();
            fs.sync_data();
            fs.close(f);
            files.push(f);
        }
        (fs, files)
    }

    #[test]
    fn drain_empties_the_bay_and_data_survives() {
        let (mut fs, files) = populated_fs(4);
        let sizes: Vec<u64> = files.iter().map(|&f| fs.file_allocated(f)).collect();
        let mut wal = RemapWal::new();
        let stats = drain_ost(&mut fs, &mut wal, 1, &DrainConfig::default());
        assert!(stats.completed, "{stats:?}");
        assert!(stats.columns_moved > 0);
        assert_eq!(fs.ost_health(1), DiskHealth::Absent);
        for (&f, &sz) in files.iter().zip(&sizes) {
            assert_eq!(fs.file_allocated(f), sz, "no blocks lost");
            assert!(!fs.ost_map_of(f).contains(&1), "no column left on the bay");
        }
        assert_eq!(fs.lifecycle().drains_completed, 1);
        assert!(fs.lifecycle().drained_blocks > 0);
    }

    #[test]
    fn draining_bay_takes_no_new_files() {
        let (mut fs, _) = populated_fs(4);
        fs.begin_drain(2);
        let f = fs.create("late", None);
        assert!(!fs.ost_map_of(f).contains(&2), "{:?}", fs.ost_map_of(f));
        assert_eq!(fs.ost_map_of(f).len(), 3, "stripes over the others");
    }

    #[test]
    fn drained_bay_can_be_readded_and_serves_new_files() {
        let (mut fs, _) = populated_fs(3);
        let mut wal = RemapWal::new();
        let stats = drain_ost(&mut fs, &mut wal, 0, &DrainConfig::default());
        assert!(stats.completed);
        fs.add_ost(0);
        assert_eq!(fs.ost_health(0), DiskHealth::Healthy);
        let f = fs.create("reborn", None);
        assert!(fs.ost_map_of(f).contains(&0));
        fs.begin_round();
        fs.write(f, StreamId::new(9, 0), 0, 96);
        fs.end_round();
        fs.sync_data();
        assert_eq!(fs.file_allocated(f), 96);
    }

    #[test]
    fn empty_columns_are_retargeted_without_io() {
        let mut fs = FileSystem::new(FsConfig::with_policy(PolicyKind::Vanilla, 3));
        // A file that never writes to OST 2's column (small file).
        let f = fs.create("tiny", None);
        fs.begin_round();
        fs.write(f, StreamId::new(1, 0), 0, 4);
        fs.end_round();
        fs.sync_data();
        fs.close(f);
        let mut wal = RemapWal::new();
        let stats = drain_ost(&mut fs, &mut wal, 2, &DrainConfig::default());
        assert!(stats.completed);
        assert!(stats.columns_retargeted >= 1, "{stats:?}");
        assert!(!fs.ost_map_of(f).contains(&2));
    }
}
