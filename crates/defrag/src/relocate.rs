//! Layer 2: the crash-safe relocation engine.
//!
//! One relocation moves a file's entire mapping on one OST into a single
//! contiguous destination run. The protocol orders its steps so that a
//! crash at *any* point leaves exactly one of {old mapping, new mapping}
//! live — never both, never neither:
//!
//! 1. probe a destination run (read-only — names it without claiming it);
//! 2. WAL `Intent` naming the probed destination, *before* any state
//!    change;
//! 3. claim the destination via `alloc_at` (atomic, all-or-nothing);
//! 4. copy the live data through the simulated disks (fallible IO);
//! 5. WAL `Commit` — the transaction's point of no return;
//! 6. apply the extent remap (idempotent).
//!
//! Crash before 5 → [`recover`] rolls back: the destination holds no
//! *reachable* data, so its blocks are freed (if they were ever claimed)
//! and the old mapping stands. Crash after 5 → recovery rolls forward:
//! the copy is durable, so the remap is re-applied. An IO fault during 4
//! aborts the relocation in place: the destination is freed immediately
//! and the intent record left dangling — recovery's ownership check makes
//! that harmless.

use mif_core::{FileSystem, OpenFile};
use mif_mds::{recover_remaps, RecoveryStop, RemapOp, RemapTxn, RemapWal};
use mif_simdisk::{IoFault, Nanos};

/// Where to inject a power cut inside one relocation. Every point of the
/// protocol where durable state (WAL image, allocator, disk) has changed
/// is represented, including torn WAL appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Intent record only partially persisted; nothing else changed.
    TornIntent { persisted: usize },
    /// Intent durable; destination not yet claimed.
    AfterIntent,
    /// Intent durable and destination claimed; no data copied.
    AfterAlloc,
    /// Data copied to the destination; commit record not written.
    AfterCopy,
    /// Commit record only partially persisted after the copy.
    TornCommit { persisted: usize },
    /// Commit durable; extent remap not yet applied.
    AfterCommit,
}

/// What one relocation attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Data moved and remapped; `copy_ns` is the simulated copy time.
    Done { txn: RemapTxn, copy_ns: Nanos },
    /// Nothing to do or nowhere to go; no state changed.
    Skipped(SkipReason),
    /// Injected power cut fired at `point`; state is as the protocol left
    /// it — run [`recover`] against the WAL image to settle it.
    Crashed { point: CrashPoint, txn: RemapTxn },
    /// The data copy hit an injected IO fault; the destination was freed
    /// and the old mapping is untouched (the intent record dangles).
    Faulted { ost: usize, fault: IoFault },
}

/// Why a relocation was not attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The mapping is already packed: one physical run serves the whole
    /// file in logical order (logical holes allowed — the extent tree
    /// keeps one extent per logical run, but a sequential read never
    /// seeks). Relocating would move data for no layout gain.
    AlreadyContiguous,
    /// No free run large enough for the whole mapping.
    NoSpace,
}

/// Is this layout already packed — physically consecutive in logical
/// order? (`physical_layout` tuples: `(logical, physical, len)`.)
pub fn is_packed(layout: &[(u64, u64, u64)]) -> bool {
    layout.windows(2).all(|w| w[1].1 == w[0].1 + w[0].2)
}

/// Relocate `file`'s mapping on stripe column `col` into one contiguous
/// run on the column's *current* physical OST — the same-OST defrag pass.
/// Already-packed layouts are skipped (relocating would move data for no
/// layout gain). `crash` injects a power cut at the given protocol point
/// (the function returns instead of finishing — the caller then models
/// the reboot by calling [`recover`]).
pub fn relocate_ost(
    fs: &mut FileSystem,
    wal: &mut RemapWal,
    file: OpenFile,
    col: usize,
    crash: Option<CrashPoint>,
) -> Outcome {
    let Some(src) = fs.ost_of_column(file, col) else {
        return Outcome::Skipped(SkipReason::AlreadyContiguous);
    };
    relocate_column(fs, wal, file, col, src as usize, crash)
}

/// Relocate `file`'s mapping on stripe column `col` into one contiguous
/// run on `dst_ost`, through the same crash-safe protocol. With
/// `dst_ost` equal to the column's current home this is defragmentation
/// (packed layouts are skipped); with a different `dst_ost` it is an
/// *evacuation* step — the whole column moves, packed or not, and the
/// file's `ost_map` retargets to `dst_ost` at the final remap. The drain
/// driver feeds every column of a draining bay through this.
pub fn relocate_column(
    fs: &mut FileSystem,
    wal: &mut RemapWal,
    file: OpenFile,
    col: usize,
    dst_ost: usize,
    crash: Option<CrashPoint>,
) -> Outcome {
    let Some(src_ost) = fs.ost_of_column(file, col).map(|o| o as usize) else {
        return Outcome::Skipped(SkipReason::AlreadyContiguous);
    };
    let moving = src_ost != dst_ost;
    let layout = fs.physical_layout(file, col);
    if layout.is_empty() || (!moving && (layout.len() <= 1 || is_packed(&layout))) {
        return Outcome::Skipped(SkipReason::AlreadyContiguous);
    }
    let logical = layout[0].0;
    let (last_l, _, last_n) = *layout.last().expect("non-empty layout");
    let len = last_l + last_n - logical;
    let total: u64 = layout.iter().map(|&(_, _, n)| n).sum();
    // Same-OST: aim near the file's largest existing run — the dominant
    // group keeps locality and the big run itself is freed right back
    // into it. Cross-OST: source addresses mean nothing on the new disk.
    let goal = if moving {
        0
    } else {
        layout
            .iter()
            .max_by_key(|&&(_, _, n)| n)
            .map(|&(_, p, _)| p)
            .expect("non-empty layout")
    };
    let Some(dest) = fs.allocator(dst_ost).probe_run(goal, total) else {
        return Outcome::Skipped(SkipReason::NoSpace);
    };
    let txn = RemapTxn {
        file: file.0 .0,
        ost: col as u32,
        logical,
        len,
        dest,
        total,
        dst_ost: dst_ost as u32,
    };

    // Step 2: intent first — before the allocator or disk change at all.
    if let Some(CrashPoint::TornIntent { persisted }) = crash {
        wal.append_torn(&RemapOp::Intent(txn), persisted);
        return Outcome::Crashed {
            point: CrashPoint::TornIntent { persisted },
            txn,
        };
    }
    wal.append(&RemapOp::Intent(txn));
    if crash == Some(CrashPoint::AfterIntent) {
        return Outcome::Crashed {
            point: CrashPoint::AfterIntent,
            txn,
        };
    }

    // Step 3: claim the probed run. Single-threaded engine: the probe's
    // run is still free, so the atomic claim cannot fail.
    let claimed = fs.allocator(dst_ost).alloc_at(dest, total);
    assert!(claimed, "probed destination run vanished");
    if crash == Some(CrashPoint::AfterAlloc) {
        return Outcome::Crashed {
            point: CrashPoint::AfterAlloc,
            txn,
        };
    }

    // Step 4: move the bytes. A fault aborts in place: release the
    // destination and leave the (harmless) dangling intent.
    let old_runs: Vec<(u64, u64)> = layout.iter().map(|&(_, p, n)| (p, n)).collect();
    let copy_ns = match fs.defrag_try_copy(src_ost, &old_runs, dst_ost, dest, total) {
        Ok(ns) => ns,
        Err((fost, fault)) => {
            fs.allocator(dst_ost).free(dest, total);
            return Outcome::Faulted { ost: fost, fault };
        }
    };
    if crash == Some(CrashPoint::AfterCopy) {
        return Outcome::Crashed {
            point: CrashPoint::AfterCopy,
            txn,
        };
    }

    // Step 5: commit — after this record is durable the new run wins.
    if let Some(CrashPoint::TornCommit { persisted }) = crash {
        wal.append_torn(&RemapOp::Commit(txn), persisted);
        return Outcome::Crashed {
            point: CrashPoint::TornCommit { persisted },
            txn,
        };
    }
    wal.append(&RemapOp::Commit(txn));
    if crash == Some(CrashPoint::AfterCommit) {
        return Outcome::Crashed {
            point: CrashPoint::AfterCommit,
            txn,
        };
    }

    // Step 6: switch the mapping and free the old blocks.
    let applied = fs.defrag_apply_remap(file, col, logical, len, dst_ost, dest, total);
    debug_assert!(applied, "fresh commit must apply");
    Outcome::Done { txn, copy_ns }
}

/// What [`recover`] did after a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct DefragRecovery {
    /// Committed transactions whose remap had to be re-applied.
    pub redone: usize,
    /// Dangling intents whose claimed destination was released.
    pub rolled_back: usize,
    /// Blocks freed by rollbacks.
    pub freed_blocks: u64,
    /// Where the WAL scan stopped.
    pub stop: RecoveryStop,
}

/// Mount-time recovery: scan the remap WAL image and settle every
/// transaction — committed ones roll forward (idempotent re-apply),
/// dangling intents roll back (release the destination iff it is still
/// claimed and no extent owns it).
///
/// Mirrors ext4: preallocation windows are discarded first, so the
/// ownership check below only sees blocks that are either extent-owned
/// or leaked by an interrupted relocation.
pub fn recover(fs: &mut FileSystem, image: &[u8]) -> DefragRecovery {
    fs.release_preallocations();
    let scan = recover_remaps(image, 0);

    let mut pending: Vec<RemapTxn> = Vec::new();
    let mut redone = 0usize;
    for op in &scan.ops {
        match op {
            RemapOp::Intent(t) => pending.push(*t),
            RemapOp::Commit(t) => {
                if let Some(i) = pending.iter().rposition(|p| p == t) {
                    pending.remove(i);
                }
                let file = OpenFile(mif_alloc::FileId(t.file));
                if fs.defrag_apply_remap(
                    file,
                    t.ost as usize,
                    t.logical,
                    t.len,
                    t.dst_ost as usize,
                    t.dest,
                    t.total,
                ) {
                    redone += 1;
                }
            }
        }
    }

    // Roll back dangling intents, oldest first. An intent's destination
    // is freed only when every block of the run is still claimed and no
    // file's extent maps into it — anything else means the claim never
    // happened, was already released (IO-fault abort), or the run has
    // since been legitimately reused.
    let mut rolled_back = 0usize;
    let mut freed_blocks = 0u64;
    for t in &pending {
        if t.total == 0 {
            continue;
        }
        // The intent's claimed destination lives on `dst_ost` — for a
        // same-OST defrag that is the column's own disk, for a drain the
        // evacuation target.
        let ost = t.dst_ost as usize;
        let alloc = fs.allocator(ost);
        let all_claimed =
            (t.dest..t.dest + t.total).all(|b| b < alloc.capacity() && alloc.is_allocated(b));
        if !all_claimed {
            continue;
        }
        // Ownership speaks physical disks: any column of any file mapping
        // into the run (the tier map's runs are checked by fsck, not here
        // — an intent's destination is never a tier run).
        if fs.run_mapped_by_any_file(ost, t.dest, t.total) {
            continue;
        }
        fs.allocator(ost).free(t.dest, t.total);
        rolled_back += 1;
        freed_blocks += t.total;
    }

    DefragRecovery {
        redone,
        rolled_back,
        freed_blocks,
        stop: scan.stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_alloc::{PolicyKind, StreamId};
    use mif_core::FsConfig;
    use mif_simdisk::FaultPlan;

    fn fragmented_fs() -> (FileSystem, OpenFile) {
        let mut cfg = FsConfig::with_policy(PolicyKind::Vanilla, 1);
        cfg.groups_per_ost = 4;
        let mut fs = FileSystem::new(cfg);
        let file = fs.create("victim", None);
        let streams: Vec<_> = (0..4).map(|i| StreamId::new(i, 0)).collect();
        for round in 0..6u64 {
            fs.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                fs.write(file, s, i as u64 * 64 + round * 4, 4);
            }
            fs.end_round();
        }
        fs.sync_data();
        fs.close(file);
        (fs, file)
    }

    fn contents(fs: &mut FileSystem, file: OpenFile) -> Vec<(u64, u64, u64)> {
        fs.physical_layout(file, 0)
    }

    #[test]
    fn relocate_collapses_to_one_extent() {
        let (mut fs, file) = fragmented_fs();
        let before = contents(&mut fs, file);
        assert!(before.len() > 1);
        let mapped: u64 = before.iter().map(|&(_, _, n)| n).sum();
        let free_before = fs.free_blocks();

        let mut wal = RemapWal::new();
        let out = relocate_ost(&mut fs, &mut wal, file, 0, None);
        let Outcome::Done { txn, .. } = out else {
            panic!("expected Done, got {out:?}");
        };
        let after = contents(&mut fs, file);
        assert!(after.len() < before.len(), "extents merged");
        assert!(is_packed(&after), "one physical run in logical order");
        assert_eq!(after[0].1, txn.dest, "run starts at the logged dest");
        assert_eq!(
            after.iter().map(|&(_, _, n)| n).sum::<u64>(),
            mapped,
            "no blocks gained or lost"
        );
        assert_eq!(fs.free_blocks(), free_before, "net allocation unchanged");
        assert_eq!(wal.len(), 2, "intent + commit");
    }

    #[test]
    fn second_pass_is_a_no_op() {
        let (mut fs, file) = fragmented_fs();
        let mut wal = RemapWal::new();
        assert!(matches!(
            relocate_ost(&mut fs, &mut wal, file, 0, None),
            Outcome::Done { .. }
        ));
        assert_eq!(
            relocate_ost(&mut fs, &mut wal, file, 0, None),
            Outcome::Skipped(SkipReason::AlreadyContiguous)
        );
    }

    #[test]
    fn crash_before_commit_rolls_back() {
        for point in [
            CrashPoint::TornIntent { persisted: 7 },
            CrashPoint::AfterIntent,
            CrashPoint::AfterAlloc,
            CrashPoint::AfterCopy,
            CrashPoint::TornCommit { persisted: 40 },
        ] {
            let (mut fs, file) = fragmented_fs();
            let before = contents(&mut fs, file);
            let free_before = fs.free_blocks();
            let mut wal = RemapWal::new();
            let out = relocate_ost(&mut fs, &mut wal, file, 0, Some(point));
            assert!(matches!(out, Outcome::Crashed { .. }), "{point:?}: {out:?}");

            let rec = recover(&mut fs, wal.image());
            assert_eq!(rec.redone, 0, "{point:?}");
            assert_eq!(
                contents(&mut fs, file),
                before,
                "{point:?}: old mapping stands"
            );
            assert_eq!(fs.free_blocks(), free_before, "{point:?}: no leak");
        }
    }

    #[test]
    fn crash_after_commit_rolls_forward() {
        let (mut fs, file) = fragmented_fs();
        let free_before = fs.free_blocks();
        let mut wal = RemapWal::new();
        let out = relocate_ost(&mut fs, &mut wal, file, 0, Some(CrashPoint::AfterCommit));
        let Outcome::Crashed { txn, .. } = out else {
            panic!("expected Crashed, got {out:?}");
        };

        let rec = recover(&mut fs, wal.image());
        assert_eq!(rec.redone, 1);
        assert_eq!(rec.rolled_back, 0);
        let after = contents(&mut fs, file);
        assert!(is_packed(&after), "new mapping wins");
        assert_eq!(after[0].1, txn.dest);
        assert_eq!(after.iter().map(|&(_, _, n)| n).sum::<u64>(), txn.total);
        assert_eq!(fs.free_blocks(), free_before, "old run was released");
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut fs, file) = fragmented_fs();
        let mut wal = RemapWal::new();
        relocate_ost(&mut fs, &mut wal, file, 0, Some(CrashPoint::AfterCommit));
        let first = recover(&mut fs, wal.image());
        assert_eq!(first.redone, 1);
        let layout = contents(&mut fs, file);
        let free = fs.free_blocks();

        let second = recover(&mut fs, wal.image());
        assert_eq!(second.redone, 0, "re-apply detects the applied remap");
        assert_eq!(second.rolled_back, 0);
        assert_eq!(contents(&mut fs, file), layout);
        assert_eq!(fs.free_blocks(), free);
    }

    #[test]
    fn io_fault_aborts_cleanly_and_engine_continues() {
        let (mut fs, file) = fragmented_fs();
        let before = contents(&mut fs, file);
        let free_before = fs.free_blocks();
        let mut wal = RemapWal::new();

        // Every IO faults: the copy aborts, destination released.
        fs.install_faults(FaultPlan::from_seed(9).with_io_errors(1.0));
        let out = relocate_ost(&mut fs, &mut wal, file, 0, None);
        assert!(matches!(out, Outcome::Faulted { .. }), "{out:?}");
        assert_eq!(contents(&mut fs, file), before);
        assert_eq!(fs.free_blocks(), free_before, "destination released");
        assert_eq!(wal.len(), 1, "dangling intent stays in the log");

        // Faults lifted: the next attempt succeeds over the same WAL.
        fs.clear_faults();
        assert!(matches!(
            relocate_ost(&mut fs, &mut wal, file, 0, None),
            Outcome::Done { .. }
        ));
        // Recovery over the full image (dangling intent + done txn) must
        // not disturb the settled state.
        let layout = contents(&mut fs, file);
        let free = fs.free_blocks();
        let rec = recover(&mut fs, wal.image());
        assert_eq!(
            rec.rolled_back, 0,
            "fault-aborted intent's run not reclaimable"
        );
        assert_eq!(contents(&mut fs, file), layout);
        assert_eq!(fs.free_blocks(), free);
    }
}
