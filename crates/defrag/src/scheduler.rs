//! Layer 3: the background scheduler.
//!
//! Drives scan → relocate under an IO budget so defragmentation rides in
//! the background instead of stealing the foreground's disk time. Each
//! tick moves at most `budget_blocks_per_tick` blocks, then samples the
//! disks' per-dispatch service time over the tick ([`DiskStats::since`]);
//! if it exceeds `latency_backoff_ns` the engine backs off — the budget
//! halves (floored) until latency recovers, then grows back. Files that
//! are open or still hold a live preallocation window are skipped: their
//! mapping is still in flux and relocating under a writer both wastes the
//! copy and races the window.

use crate::relocate::{relocate_ost, Outcome, SkipReason};
use crate::scanner::{scan, FileCandidate};
use mif_core::{FileSystem, OpenFile};
use mif_mds::RemapWal;
use mif_simdisk::Nanos;
use std::collections::VecDeque;

/// Throttle and sizing knobs for one [`run`].
#[derive(Debug, Clone, Copy)]
pub struct DefragConfig {
    /// Block-move budget per tick (copy cost ceiling).
    pub budget_blocks_per_tick: u64,
    /// Hard cap on ticks — one run never monopolizes the system.
    pub max_ticks: u64,
    /// Per-dispatch service time above which the engine backs off.
    pub latency_backoff_ns: Nanos,
    /// Worker threads for the scan's histogram leg.
    pub workers: usize,
}

impl Default for DefragConfig {
    fn default() -> Self {
        Self {
            budget_blocks_per_tick: 4096,
            max_ticks: 64,
            latency_backoff_ns: 40_000_000,
            workers: 4,
        }
    }
}

/// The budget never shrinks below this, so progress cannot stall.
const MIN_BUDGET_BLOCKS: u64 = 64;

/// What one [`run`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Files with at least one successful relocation.
    pub files_defragmented: u64,
    /// Successful relocations (one per (file, OST)).
    pub relocations: u64,
    /// Blocks copied to new homes.
    pub blocks_moved: u64,
    /// Total extents before / after, over all scanned files.
    pub extents_before: u64,
    /// Total extents after the run.
    pub extents_after: u64,
    /// Ticks that ended in a latency backoff.
    pub backoffs: u64,
    /// Candidates skipped because the file was open or held a live
    /// preallocation window.
    pub skipped_busy: u64,
    /// Relocations skipped for lack of a large-enough free run.
    pub skipped_no_space: u64,
    /// Simulated time spent copying data.
    pub copy_ns: Nanos,
}

/// One full background pass: scan for candidates, then relocate them in
/// priority order under the tick budget. Returns what happened; the
/// caller keeps `wal`'s image for crash recovery.
pub fn run(fs: &mut FileSystem, wal: &mut RemapWal, cfg: &DefragConfig) -> DefragStats {
    run_prioritized(fs, wal, cfg, |_| 1)
}

/// [`run`] with a caller-supplied priority weight: candidates are ordered
/// by `weight(file) × excess extents` (descending, file id breaking ties)
/// instead of excess extents alone. The tiering engine passes file heat
/// here, so a hot fragmented file is defragmented before an equally
/// fragmented cold one — the budgeted ticks go where reads actually land.
/// A weight of zero parks a candidate at the back of the queue without
/// dropping it. `run` is exactly this with a unit weight.
pub fn run_prioritized(
    fs: &mut FileSystem,
    wal: &mut RemapWal,
    cfg: &DefragConfig,
    weight: impl Fn(OpenFile) -> u64,
) -> DefragStats {
    let report = scan(fs, cfg.workers);
    let mut stats = DefragStats {
        extents_before: report.report.extents as u64,
        ..Default::default()
    };
    let mut candidates = report.candidates;
    let key = |c: &FileCandidate| weight(c.file).saturating_mul(c.score());
    candidates.sort_by(|a, b| key(b).cmp(&key(a)).then(a.file.0.cmp(&b.file.0)));
    let mut queue: VecDeque<FileCandidate> = candidates.into();
    let mut budget = cfg.budget_blocks_per_tick.max(MIN_BUDGET_BLOCKS);

    while !queue.is_empty() && stats.ticks < cfg.max_ticks {
        stats.ticks += 1;
        let tick_start = fs.data_stats();
        let mut moved_this_tick = 0u64;

        while moved_this_tick < budget {
            let Some(cand) = queue.pop_front() else {
                break;
            };
            if fs.open_handle_count(cand.file) > 0 || fs.has_live_preallocation(cand.file) {
                stats.skipped_busy += 1;
                continue;
            }
            let mut relocated_any = false;
            for col in 0..fs.column_count(cand.file) {
                match relocate_ost(fs, wal, cand.file, col, None) {
                    Outcome::Done { txn, copy_ns } => {
                        relocated_any = true;
                        stats.relocations += 1;
                        stats.blocks_moved += txn.total;
                        stats.copy_ns += copy_ns;
                        moved_this_tick += txn.total;
                    }
                    Outcome::Skipped(SkipReason::NoSpace) => stats.skipped_no_space += 1,
                    Outcome::Skipped(SkipReason::AlreadyContiguous) => {}
                    // `run` never injects crashes, and a copy fault ends
                    // this file's pass (the engine moves on).
                    Outcome::Crashed { .. } | Outcome::Faulted { .. } => break,
                }
            }
            if relocated_any {
                stats.files_defragmented += 1;
            }
        }

        // Foreground-latency sample over the tick: mean busy time per
        // dispatched request. Back off (halve the budget) when the disks
        // look saturated; creep back up when they do not.
        let delta = fs.data_stats().since(&tick_start);
        let mean_ns = delta.busy_ns.checked_div(delta.dispatched).unwrap_or(0);
        if mean_ns > cfg.latency_backoff_ns {
            stats.backoffs += 1;
            budget = (budget / 2).max(MIN_BUDGET_BLOCKS);
        } else if budget < cfg.budget_blocks_per_tick {
            budget = (budget * 2).min(cfg.budget_blocks_per_tick);
        }
    }

    stats.extents_after = scan(fs, cfg.workers).report.extents as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_workloads::{age_data_fs, DataAgingParams};

    #[test]
    fn run_reduces_fragmentation_on_an_aged_fs() {
        let (mut fs, _) = age_data_fs(&DataAgingParams::default());
        let mut wal = RemapWal::new();
        let stats = run(&mut fs, &mut wal, &DefragConfig::default());
        assert!(stats.relocations > 0, "{stats:?}");
        assert!(
            stats.extents_after < stats.extents_before,
            "degree must strictly drop: {stats:?}"
        );
        assert!(stats.blocks_moved > 0);
        assert_eq!(wal.len(), stats.relocations * 2, "intent+commit each");
    }

    #[test]
    fn open_files_are_left_alone() {
        let params = DataAgingParams::default();
        let (mut fs, survivors) = age_data_fs(&params);
        // Reopen one survivor: it must be skipped.
        let held = fs.open("aged-0").expect("survivor exists");
        let before = fs.physical_layout(held, 0);

        let mut wal = RemapWal::new();
        let stats = run(&mut fs, &mut wal, &DefragConfig::default());
        assert!(stats.skipped_busy >= 1, "{stats:?}");
        assert_eq!(fs.physical_layout(held, 0), before, "open file untouched");
        fs.close(held);
        drop(survivors);
    }

    #[test]
    fn tiny_budget_throttles_into_more_ticks() {
        let (mut fs, _) = age_data_fs(&DataAgingParams::default());
        let mut wal = RemapWal::new();
        let cfg = DefragConfig {
            budget_blocks_per_tick: MIN_BUDGET_BLOCKS,
            max_ticks: 3,
            ..Default::default()
        };
        let stats = run(&mut fs, &mut wal, &cfg);
        assert_eq!(stats.ticks, 3, "budget caps the pass: {stats:?}");
        // A second, unthrottled run finishes the job.
        let stats2 = run(&mut fs, &mut wal, &DefragConfig::default());
        assert!(stats2.extents_after <= stats.extents_after);
    }

    #[test]
    fn saturated_disks_trigger_backoff() {
        let (mut fs, _) = age_data_fs(&DataAgingParams::default());
        let mut wal = RemapWal::new();
        let cfg = DefragConfig {
            latency_backoff_ns: 0, // any IO at all looks saturated
            budget_blocks_per_tick: 256,
            ..Default::default()
        };
        let stats = run(&mut fs, &mut wal, &cfg);
        assert!(stats.backoffs > 0, "{stats:?}");
    }

    #[test]
    fn second_run_is_a_no_op() {
        let (mut fs, _) = age_data_fs(&DataAgingParams::default());
        let mut wal = RemapWal::new();
        run(&mut fs, &mut wal, &DefragConfig::default());
        let again = run(&mut fs, &mut wal, &DefragConfig::default());
        assert_eq!(again.relocations, 0, "{again:?}");
        assert_eq!(again.extents_before, again.extents_after);
    }
}
