//! # mif-defrag — online defragmentation for the MiF simulator
//!
//! MiF's preallocation policies *prevent* intra-file fragmentation at
//! write time (§III); this crate is the complementary *cure* for files
//! that fragmented anyway — churned free space, policy-less writers, aged
//! deployments. It relocates each fragmented file's per-OST mapping into
//! one contiguous run, online and crash-safe, throttled so the foreground
//! keeps its disk time.
//!
//! Four layers plus a CLI:
//!
//! * [`scanner`] — walks the extent layer scoring files (extents vs the
//!   one-per-OST ideal) and the allocators' free space (per-group
//!   [`mif_alloc::FreeRunHistogram`]s, computed in parallel on the fsck
//!   worker pool), and emits a prioritized candidate queue;
//! * [`relocate`] — the crash-safe relocation protocol: probe → WAL
//!   `Intent` → claim → copy → WAL `Commit` → remap, with first-class
//!   crash injection ([`CrashPoint`]) and mount-time [`recover`] that
//!   rolls committed transactions forward and dangling intents back;
//! * [`scheduler`] — the background pass: relocations under a
//!   blocks-per-tick budget with latency-driven backoff, skipping files
//!   that are open or hold live preallocation windows;
//! * [`drain`] — online bay evacuation: every stripe column on a draining
//!   OST moves (whole-column, same WAL protocol) onto the bays accepting
//!   placements, so the bay ends `Absent` and fsck-clean even through a
//!   mid-drain power cut;
//! * `mif-defrag` — the operator CLI (`scan` reports, `run` defragments,
//!   fsck-style exit codes).
//!
//! # Example
//!
//! ```
//! use mif_defrag::{run, DefragConfig};
//! use mif_mds::RemapWal;
//! use mif_workloads::{age_data_fs, DataAgingParams};
//!
//! // Age a file system, then defragment it in the background.
//! let (mut fs, _) = age_data_fs(&DataAgingParams::default());
//! let before = mif_defrag::scan(&fs, 2).report.degree();
//!
//! let mut wal = RemapWal::new();
//! let stats = run(&mut fs, &mut wal, &DefragConfig::default());
//! let after = mif_defrag::scan(&fs, 2).report.degree();
//! assert!(stats.relocations > 0 && after < before);
//! ```

pub mod drain;
pub mod relocate;
pub mod scanner;
pub mod scheduler;

pub use drain::{drain_ost, DrainConfig, DrainStats};
pub use relocate::{
    is_packed, recover, relocate_column, relocate_ost, CrashPoint, DefragRecovery, Outcome,
    SkipReason,
};
pub use scanner::{scan, scan_files, FileCandidate, GroupFreeSummary, ScanReport};
pub use scheduler::{run, run_prioritized, DefragConfig, DefragStats};
