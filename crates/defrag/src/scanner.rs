//! Layer 1: the scanner.
//!
//! Walks the MDS/extent layer to score every file (extent count against the
//! ideal of one extent per data-holding OST) and every allocation group
//! (free-run histogram from the allocator bitmaps), and emits a prioritized
//! candidate queue for the relocation engine. The per-group histograms are
//! computed over point-in-time bitmap snapshots on the fsck work-stealing
//! pool — the scan never holds an allocator lock while it counts runs.

use crate::relocate::is_packed;
use mif_alloc::FreeRunHistogram;
use mif_core::{FileSystem, OpenFile};
use mif_extent::FragReport;
use mif_fsck::pool;

/// One defragmentation candidate: a file whose mapping has more extents
/// than its ideal layout needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileCandidate {
    pub file: OpenFile,
    /// Total extents across all OSTs.
    pub extents: u64,
    /// The ideal extent count: one per OST holding any of the file's data.
    pub ideal: u64,
    /// Mapped blocks (relocation cost ceiling).
    pub blocks: u64,
}

impl FileCandidate {
    /// Excess extents — the scanner's priority key.
    pub fn score(&self) -> u64 {
        self.extents.saturating_sub(self.ideal)
    }
}

/// One allocation group's free-space state.
#[derive(Debug, Clone)]
pub struct GroupFreeSummary {
    pub ost: usize,
    pub group: usize,
    pub hist: FreeRunHistogram,
}

/// Everything one scan pass produces.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Aggregate fragmentation over all scanned files (degree = mean
    /// extents per file, the paper's §IV-A metric).
    pub report: FragReport,
    /// Candidates worth relocating, highest excess first (ties broken by
    /// file id for determinism).
    pub candidates: Vec<FileCandidate>,
    /// Per-(OST, group) free-run histograms, in (ost, group) order.
    pub free: Vec<GroupFreeSummary>,
}

impl ScanReport {
    /// All groups' histograms folded into one.
    pub fn free_total(&self) -> FreeRunHistogram {
        let mut total = FreeRunHistogram::default();
        for g in &self.free {
            total.absorb(&g.hist);
        }
        total
    }
}

/// Scan `fs`: score every file and every allocation group. `files` limits
/// the walk to the given handles; pass `fs.file_handles()` for the whole
/// system. Read-only — scanning never moves a block.
pub fn scan_files(fs: &FileSystem, files: &[OpenFile], workers: usize) -> ScanReport {
    let osts = fs.config.osts as usize;
    let mut report = FragReport::default();
    let mut candidates = Vec::new();
    for &file in files {
        let mut extents = 0u64;
        let mut blocks = 0u64;
        let mut ideal = 0u64;
        let mut packed = true;
        for ost in 0..osts {
            let layout = fs.physical_layout(file, ost);
            if layout.is_empty() {
                continue;
            }
            ideal += 1;
            extents += layout.len() as u64;
            blocks += layout.iter().map(|&(_, _, l)| l).sum::<u64>();
            packed &= is_packed(&layout);
        }
        report.files += 1;
        report.extents += extents as usize;
        report.blocks += blocks;
        let c = FileCandidate {
            file,
            extents,
            ideal,
            blocks,
        };
        // Already-packed files (every OST one physical run in logical
        // order) gain nothing from relocation, whatever their extent
        // count says — logical holes keep extents apart forever.
        if c.score() > 0 && !packed {
            candidates.push(c);
        }
    }
    candidates.sort_by(|a, b| b.score().cmp(&a.score()).then(a.file.0.cmp(&b.file.0)));

    // Free-space leg: snapshot every group's bitmap, then count runs on the
    // pool. Snapshots are cheap clones; the histogram scan is the work.
    let mut units = Vec::new();
    for ost in 0..osts {
        let alloc = fs.allocator(ost);
        for group in 0..alloc.group_count() {
            units.push((ost, group, alloc.snapshot_group(group)));
        }
    }
    let free = pool::run_units(units, workers, |(ost, group, bitmap)| GroupFreeSummary {
        ost: *ost,
        group: *group,
        hist: bitmap.free_run_histogram(),
    });

    ScanReport {
        report,
        candidates,
        free,
    }
}

/// [`scan_files`] over every live file handle.
pub fn scan(fs: &FileSystem, workers: usize) -> ScanReport {
    scan_files(fs, &fs.file_handles(), workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_alloc::{PolicyKind, StreamId};
    use mif_core::FsConfig;

    fn fragmented_fs() -> (FileSystem, OpenFile, OpenFile) {
        let mut cfg = FsConfig::with_policy(PolicyKind::Reservation, 2);
        cfg.groups_per_ost = 4;
        let mut fs = FileSystem::new(cfg);
        let frag = fs.create("frag", None);
        let tidy = fs.create("tidy", None);
        let streams: Vec<_> = (0..4).map(|i| StreamId::new(i, 0)).collect();
        for round in 0..8u64 {
            fs.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                fs.write(frag, s, i as u64 * 64 + round * 4, 4);
            }
            fs.end_round();
        }
        fs.round(|f| f.write(tidy, StreamId::new(9, 0), 0, 64));
        fs.sync_data();
        fs.close(frag);
        fs.close(tidy);
        (fs, frag, tidy)
    }

    #[test]
    fn fragmented_file_tops_the_queue() {
        let (fs, frag, _tidy) = fragmented_fs();
        let r = scan(&fs, 2);
        assert!(!r.candidates.is_empty());
        assert_eq!(r.candidates[0].file, frag);
        assert!(r.candidates[0].score() > 0);
        assert!(r.report.degree() > 1.0);
        // Sorted by descending score.
        for w in r.candidates.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
    }

    #[test]
    fn free_histograms_cover_all_groups_and_free_space() {
        let (fs, _, _) = fragmented_fs();
        let r = scan(&fs, 4);
        assert_eq!(r.free.len(), 2 * 4, "one summary per (ost, group)");
        assert_eq!(r.free_total().free_blocks(), fs.free_blocks());
    }

    #[test]
    fn scan_is_deterministic_across_worker_counts() {
        let (fs, _, _) = fragmented_fs();
        let a = scan(&fs, 1);
        let b = scan(&fs, 8);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.report, b.report);
        assert_eq!(a.free_total(), b.free_total());
    }

    #[test]
    fn contiguous_file_is_not_a_candidate() {
        let (fs, _, tidy) = fragmented_fs();
        let r = scan(&fs, 1);
        assert!(r.candidates.iter().all(|c| c.file != tidy));
    }
}
