//! Command-line front end: build a seeded, data-aged file system, report
//! its fragmentation, and optionally defragment it online.
//!
//!     mif-defrag scan --seed 42
//!     mif-defrag run  --seed 42 --budget 4096 --ticks 64
//!
//! `scan` prints the candidate queue and free-space histograms; `run`
//! executes a throttled background pass and re-checks the result with the
//! whole-filesystem checker. Exit status mirrors `mif-fsck`: 0 when `run`
//! strictly reduced the fragmentation degree and left a clean file
//! system, 2 otherwise (`scan` exits 0 unless the scan itself is empty).

use mif_core::FileSystem;
use mif_defrag::{recover, run, scan, DefragConfig};
use mif_fsck::FsckOptions;
use mif_mds::RemapWal;
use mif_workloads::{age_data_fs, DataAgingParams};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mif-defrag <scan|run> [--seed N] [--workers N] [--budget BLOCKS] [--ticks N]\n\
         \n\
         Builds a seeded, churn-aged file system.\n\
         scan: report fragmented files and free-space histograms.\n\
         run:  defragment online under a blocks-per-tick budget, then\n\
         verify with fsck. Exits 0 when the degree strictly dropped\n\
         and the file system checks clean."
    );
    std::process::exit(64);
}

#[derive(Clone, Copy, PartialEq)]
enum Cmd {
    Scan,
    Run,
}

struct Args {
    cmd: Cmd,
    seed: u64,
    workers: usize,
    budget: u64,
    ticks: u64,
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let cmd = match it.next().as_deref() {
        Some("scan") => Cmd::Scan,
        Some("run") => Cmd::Run,
        Some("--help") | Some("-h") | None => usage(),
        Some(other) => {
            eprintln!("unknown command: {other}");
            usage();
        }
    };
    let defaults = DefragConfig::default();
    let mut args = Args {
        cmd,
        seed: 1,
        workers: defaults.workers,
        budget: defaults.budget_blocks_per_tick,
        ticks: defaults.max_ticks,
    };
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match a.as_str() {
            "--seed" => args.seed = num("--seed"),
            "--workers" => args.workers = num("--workers") as usize,
            "--budget" => args.budget = num("--budget"),
            "--ticks" => args.ticks = num("--ticks"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

/// The CLI's workload: the shared data-aging generator, seeded, with all
/// handles closed so every survivor is a legal relocation target.
fn build_fs(seed: u64) -> FileSystem {
    let params = DataAgingParams {
        seed,
        ..Default::default()
    };
    let (fs, _survivors) = age_data_fs(&params);
    fs
}

fn print_scan(fs: &FileSystem, workers: usize) -> f64 {
    let report = scan(fs, workers);
    let degree = report.report.degree();
    println!(
        "scan: {} files, {} extents, {} blocks mapped — degree {:.2} (ideal 1.00)",
        report.report.files, report.report.extents, report.report.blocks, degree
    );
    for c in report.candidates.iter().take(10) {
        println!(
            "  file {:>4}: {:>3} extents over {:>2} OST(s), {:>5} blocks, excess {}",
            c.file.0 .0,
            c.extents,
            c.ideal,
            c.blocks,
            c.score()
        );
    }
    if report.candidates.len() > 10 {
        println!("  ... and {} more candidates", report.candidates.len() - 10);
    }
    println!("free space: {}", report.free_total());
    degree
}

fn main() -> ExitCode {
    let args = parse_args();
    println!("mif-defrag: seed {}, workers {}", args.seed, args.workers);
    let mut fs = build_fs(args.seed);

    let degree_before = print_scan(&fs, args.workers);
    if args.cmd == Cmd::Scan {
        return ExitCode::SUCCESS;
    }

    let cfg = DefragConfig {
        budget_blocks_per_tick: args.budget,
        max_ticks: args.ticks,
        workers: args.workers,
        ..Default::default()
    };
    let mut wal = RemapWal::new();
    let stats = run(&mut fs, &mut wal, &cfg);
    println!(
        "run: {} relocations over {} file(s) in {} tick(s); {} blocks moved in {:.2} ms of disk time",
        stats.relocations,
        stats.files_defragmented,
        stats.ticks,
        stats.blocks_moved,
        stats.copy_ns as f64 / 1e6,
    );
    println!(
        "     backoffs {}, skipped busy {}, skipped no-space {}",
        stats.backoffs, stats.skipped_busy, stats.skipped_no_space
    );

    // Settle the WAL exactly as a post-crash mount would — on a clean run
    // this is a no-op and proves the log replays to the same state.
    let rec = recover(&mut fs, wal.image());
    if rec.redone + rec.rolled_back > 0 {
        println!(
            "recover: {} redone, {} rolled back ({} blocks freed)",
            rec.redone, rec.rolled_back, rec.freed_blocks
        );
    }

    let degree_after = print_scan(&fs, args.workers);
    let fsck = mif_fsck::run(&mut fs, &FsckOptions::default().with_workers(args.workers));
    println!("fsck: {}", fsck.summary());

    if degree_after < degree_before && fsck.clean() {
        println!(
            "seed {}: degree {degree_before:.2} -> {degree_after:.2}, clean",
            args.seed
        );
        ExitCode::SUCCESS
    } else {
        println!("seed {}: DIRTY or no improvement", args.seed);
        ExitCode::from(2)
    }
}
