//! The service front-end: worker shards over [`ConcurrentFs`].
//!
//! [`Server::start`] spawns `workers` shard threads, each owning one
//! bounded frame queue. A client maps to the shard `client_id % workers`,
//! so all of its frames land in one queue drained by one worker — the
//! transport preserves per-client program order by construction.
//!
//! The worker loop drains a batch, decodes each frame, and asks the
//! client's session what to do ([`Dispatch`]): a next-in-order request
//! executes on the engine, a duplicate is answered from the replay cache
//! without touching the engine, a gap is refused. The batch's acks are
//! then issued under the **durability contract**:
//!
//! 1. every executed write staged its WAL record via
//!    `try_write_journaled`, and the worker remembers the highest seqno;
//! 2. one [`ConcurrentFs::wal_commit`] on that seqno blocks until the
//!    group-commit WAL reports the whole batch durable (one merged flush
//!    amortized across every worker committing concurrently);
//! 3. the worker then checks [`ConcurrentFs::wal_frozen`]. Frozen means a
//!    simulated power cut tore the very flush this batch rode — the media
//!    stopped at the crash instant even though the in-memory protocol ran
//!    on. The worker declares the server **dead**: queues close, parked
//!    submitters fail, and — critically — *none* of this batch's acks are
//!    issued. `GroupCommitWal` sets `frozen` under the flush mutex before
//!    advancing the durable counter, so a torn flush is always visible to
//!    the commit that rode it: an ack can never be issued for a record
//!    the media lost.
//!
//! Acks are delivered into per-session inboxes (stamped with the server
//! clock); replayed duplicates carry their original execution's ack time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mif_alloc::{FileId, StreamId};
use mif_core::{ConcurrentFs, OpenFile};

use crate::protocol::{decode_request, ClientId, Op, Reply, Request, SeqNo, Status};
use crate::queue::BoundedQueue;
use crate::session::{Dispatch, Session, SessionTable};

/// Tunables of the service layer (engine tunables live in `FsConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker shards (and request queues).
    pub workers: usize,
    /// Frames one queue holds before pushes park.
    pub queue_capacity: usize,
    /// Per-client in-flight cap: requests admitted but not yet acked.
    pub admission_window: usize,
    /// Replies cached per session for duplicate replay.
    pub replay_cache: usize,
    /// Frames a worker drains per queue visit.
    pub batch: usize,
    /// Artificial stall per executed request (backpressure tests model a
    /// slow shard with this; 0 in production and benches).
    pub worker_delay_ns: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 1024,
            admission_window: 32,
            replay_cache: 64,
            batch: 64,
            worker_delay_ns: 0,
        }
    }
}

/// Submission failed because the server is dead (shut down, or killed by
/// a simulated power cut).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerDead;

/// Aggregate service counters (the bench's evidence block).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Requests executed on the engine (exactly-once effects).
    pub executed: u64,
    /// Duplicates answered from the replay cache (engine untouched).
    pub dup_replays: u64,
    /// Duplicates/violations refused (`TooOld` / `SeqGap`) and frames
    /// that failed checksum or decode.
    pub rejected: u64,
    /// Acks issued.
    pub acks: u64,
    /// Times a submitter parked on a full request queue.
    pub queue_parks: u64,
    /// High-water mark across the request queues.
    pub queue_max_depth: u64,
    /// Times a submitter parked on a full admission window.
    pub admission_parks: u64,
    /// Sessions ever created.
    pub sessions: u64,
    /// The WAL durable watermark at snapshot time.
    pub wal_durable: u64,
}

/// Reply delivery deferred to after the batch's durability gate. The
/// *application* of an executed request (its `last_applied` advance and
/// replay-cache entry) already happened at execute time via
/// [`Session::mark_applied`]; only the ack itself waits for the gate.
enum PendingAck {
    /// Freshly executed: ack it, stamped with the post-durability clock.
    New {
        session: Arc<Session>,
        client_id: ClientId,
        seq_no: SeqNo,
        status: Status,
    },
    /// A duplicate: replay the cache at delivery time (so an in-batch
    /// duplicate sees its original's final ack stamp).
    Replay {
        session: Arc<Session>,
        client_id: ClientId,
        seq_no: SeqNo,
    },
    /// A refusal (`TooOld` / `SeqGap`): inbox only, nothing recorded.
    Refuse {
        session: Arc<Session>,
        client_id: ClientId,
        seq_no: SeqNo,
        status: Status,
    },
}

/// The running service. See the module docs for the protocol.
pub struct Server {
    fs: ConcurrentFs,
    cfg: ServerConfig,
    queues: Vec<Arc<BoundedQueue>>,
    sessions: SessionTable,
    /// Set on shutdown or power-cut death; checked by submitters, parked
    /// admission waits, and reapers.
    dead: AtomicBool,
    epoch: Instant,
    workers: Mutex<Vec<JoinHandle<()>>>,
    submitted: AtomicU64,
    executed: AtomicU64,
    dup_replays: AtomicU64,
    rejected: AtomicU64,
    acks: AtomicU64,
}

impl Server {
    /// Start the service over `fs`: spawns the worker shards and returns
    /// the shared handle clients submit through.
    pub fn start(fs: ConcurrentFs, cfg: ServerConfig) -> Arc<Server> {
        assert!(cfg.workers > 0, "a server needs at least one worker");
        let server = Arc::new(Server {
            fs,
            cfg,
            queues: (0..cfg.workers)
                .map(|_| Arc::new(BoundedQueue::new(cfg.queue_capacity)))
                .collect(),
            sessions: SessionTable::new(cfg.replay_cache),
            dead: AtomicBool::new(false),
            epoch: Instant::now(),
            workers: Mutex::new(Vec::new()),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            dup_replays: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            acks: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(cfg.workers);
        for shard in 0..cfg.workers {
            let srv = Arc::clone(&server);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mif-server-{shard}"))
                    .spawn(move || srv.worker_loop(shard))
                    .expect("spawn worker"),
            );
        }
        *server.workers.lock().unwrap() = handles;
        server
    }

    /// Nanoseconds on the server clock — the shared timeline `sent_at_ns`
    /// and `acked_at_ns` are stamped from.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Is the server dead (shut down or power-cut)?
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Submit one request: admission-controlled (parks while the client's
    /// in-flight window is full), framed, and enqueued on the client's
    /// shard. Never drops and never reorders a client's requests — a full
    /// queue parks the submitter until the worker frees space.
    pub fn submit(&self, req: &Request) -> Result<(), ServerDead> {
        if self.is_dead() {
            return Err(ServerDead);
        }
        let session = self.sessions.session(req.client_id);
        if !session.admit(self.cfg.admission_window, &self.dead) {
            return Err(ServerDead);
        }
        let frame = crate::protocol::encode_request(req);
        let shard = (req.client_id % self.queues.len() as u64) as usize;
        match self.queues[shard].push(frame) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(ServerDead),
        }
    }

    /// Reap the acks delivered to `client_id`'s inbox, in delivery order.
    /// With `wait`, parks until at least one ack exists or the server
    /// dies.
    pub fn take_acks(&self, client_id: ClientId, wait: bool) -> Vec<Reply> {
        self.sessions.session(client_id).take_acks(wait, &self.dead)
    }

    /// Highest applied seq_no for `client_id` (verification hook).
    pub fn last_applied(&self, client_id: ClientId) -> SeqNo {
        self.sessions.session(client_id).last_applied()
    }

    /// Stop accepting work, drain the queues, join the workers. Idempotent.
    pub fn shutdown(&self) {
        for q in &self.queues {
            q.close();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            h.join().expect("worker panicked");
        }
        self.dead.store(true, Ordering::Release);
    }

    /// Shut down and hand the engine back (for quiesced verification:
    /// `into_engine()`, fsck, serial-replay comparison).
    pub fn into_fs(self: Arc<Server>) -> ConcurrentFs {
        self.shutdown();
        match Arc::try_unwrap(self) {
            Ok(s) => s.fs,
            Err(_) => panic!("into_fs with outstanding Server handles"),
        }
    }

    /// The engine, for read-side verification while the server runs.
    pub fn fs(&self) -> &ConcurrentFs {
        &self.fs
    }

    /// Drain the engine's lock-free access recorder: one
    /// `(file, reads, writes)` delta per file touched since the last
    /// drain. The tiering engine feeds these to its heat classifier
    /// (`TierEngine::observe`) — callable while requests are in flight,
    /// since the recorder is swap-based and never blocks the data path.
    pub fn heat_feed(&self) -> Vec<(OpenFile, u64, u64)> {
        self.fs.drain_access()
    }

    /// Aggregate service counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            dup_replays: self.dup_replays.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            acks: self.acks.load(Ordering::Relaxed),
            queue_parks: self.queues.iter().map(|q| q.parks()).sum(),
            queue_max_depth: self.queues.iter().map(|q| q.max_depth()).max().unwrap_or(0),
            admission_parks: self.sessions.total_admission_parks(),
            sessions: self.sessions.len() as u64,
            wal_durable: self.fs.wal_durable_watermark(),
        }
    }

    // ----- the worker shard ----------------------------------------------

    fn worker_loop(&self, shard: usize) {
        loop {
            let batch = self.queues[shard].pop_batch(self.cfg.batch);
            if batch.is_empty() {
                return; // closed and drained
            }
            if !self.execute_batch(&batch) {
                return; // power cut: the server died under us
            }
        }
    }

    /// Execute one drained batch and issue its acks under the durability
    /// gate. Returns `false` if a power cut killed the server (no acks
    /// were issued for this batch).
    fn execute_batch(&self, batch: &[Vec<u8>]) -> bool {
        let mut pending: Vec<PendingAck> = Vec::with_capacity(batch.len());
        // Highest WAL seqno staged by this batch's writes, if any.
        let mut max_wal_seq: Option<u64> = None;
        for frame in batch {
            let Ok(req) = decode_request(frame) else {
                // Frames are checksummed end-to-end; a decode failure has
                // no trustworthy client to answer.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            if self.cfg.worker_delay_ns > 0 {
                std::thread::sleep(Duration::from_nanos(self.cfg.worker_delay_ns));
            }
            let session = self.sessions.session(req.client_id);
            match session.dispatch(req.seq_no) {
                Dispatch::Execute => {
                    let status = self.apply(&req.op, req.client_id, &mut max_wal_seq);
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    // Applied now (so the batch's next request dispatches
                    // against it); acked only after the durability gate.
                    session.mark_applied(Reply {
                        client_id: req.client_id,
                        seq_no: req.seq_no,
                        status,
                        acked_at_ns: 0,
                    });
                    pending.push(PendingAck::New {
                        session,
                        client_id: req.client_id,
                        seq_no: req.seq_no,
                        status,
                    });
                }
                Dispatch::Replay(_) => {
                    self.dup_replays.fetch_add(1, Ordering::Relaxed);
                    pending.push(PendingAck::Replay {
                        session,
                        client_id: req.client_id,
                        seq_no: req.seq_no,
                    });
                }
                Dispatch::TooOld => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    pending.push(PendingAck::Refuse {
                        session,
                        client_id: req.client_id,
                        seq_no: req.seq_no,
                        status: Status::TooOld,
                    });
                }
                Dispatch::Gap => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    pending.push(PendingAck::Refuse {
                        session,
                        client_id: req.client_id,
                        seq_no: req.seq_no,
                        status: Status::SeqGap,
                    });
                }
            }
        }
        // The durability gate: one commit covers every write this batch
        // staged (group commit coalesces the flush across workers), then
        // the frozen check decides whether the media actually took it.
        if let Some(seq) = max_wal_seq {
            self.fs.wal_commit(seq);
            if self.fs.wal_frozen() {
                // Power cut mid-flush. The media image stopped before (or
                // inside) the flush this batch rode; acking now could
                // acknowledge a write recovery will not see. The server
                // dies with the batch unacked.
                self.dead.store(true, Ordering::Release);
                for q in &self.queues {
                    q.close();
                }
                return false;
            }
        }
        let now = self.now_ns();
        // Count BEFORE delivering: a client that drains its last ack may
        // be observed (stats read) the instant `deliver_*` wakes it, and
        // the counter must already cover the ack it just saw.
        self.acks.fetch_add(pending.len() as u64, Ordering::Relaxed);
        for p in pending {
            match p {
                PendingAck::New {
                    session,
                    client_id,
                    seq_no,
                    status,
                } => session.deliver_applied(Reply {
                    client_id,
                    seq_no,
                    status,
                    acked_at_ns: now,
                }),
                PendingAck::Replay {
                    session,
                    client_id,
                    seq_no,
                } => session.deliver_replay(client_id, seq_no, now),
                PendingAck::Refuse {
                    session,
                    client_id,
                    seq_no,
                    status,
                } => session.deliver_again(Reply {
                    client_id,
                    seq_no,
                    status,
                    acked_at_ns: now,
                }),
            }
        }
        true
    }

    /// Execute one next-in-order op on the engine. Write ops record their
    /// WAL seqno into `max_wal_seq` for the batch's durability gate.
    fn apply(&self, op: &Op, client_id: ClientId, max_wal_seq: &mut Option<u64>) -> Status {
        match op {
            Op::Create {
                name,
                size_hint_blocks,
            } => {
                let f = self.fs.create(name, *size_hint_blocks);
                Status::Handle(f.0 .0)
            }
            Op::Open { name } => match self.fs.open(name) {
                Some(f) => Status::Handle(f.0 .0),
                None => Status::NotFound,
            },
            Op::Write {
                handle,
                stream,
                offset,
                len,
            } => {
                if *len == 0 {
                    return Status::Invalid;
                }
                let file = OpenFile(FileId(*handle));
                if !self.fs.has_file(file) {
                    return Status::NotFound;
                }
                let sid = StreamId::new(client_id as u32, *stream);
                match self.fs.try_write_journaled(file, sid, *offset, *len) {
                    Ok(seq) => {
                        *max_wal_seq = Some(max_wal_seq.map_or(seq, |m| m.max(seq)));
                        Status::Done
                    }
                    Err((ost, _fault)) => Status::IoError { ost: ost as u32 },
                }
            }
            Op::Read {
                handle,
                stream,
                offset,
                len,
            } => {
                let file = OpenFile(FileId(*handle));
                if *len == 0 || !self.fs.has_file(file) {
                    return Status::NotFound;
                }
                self.fs.read(
                    file,
                    StreamId::new(client_id as u32, *stream),
                    *offset,
                    *len,
                );
                Status::Done
            }
            Op::Sync => match self.fs.try_sync() {
                Ok(()) => Status::Done,
                Err((ost, _fault)) => Status::IoError { ost: ost as u32 },
            },
            Op::Close { handle } => {
                let file = OpenFile(FileId(*handle));
                if !self.fs.has_file(file) {
                    return Status::NotFound;
                }
                self.fs.close(file);
                Status::Done
            }
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.cfg.workers)
            .field("dead", &self.is_dead())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mif_alloc::PolicyKind;
    use mif_core::FsConfig;

    fn engine() -> ConcurrentFs {
        ConcurrentFs::new(FsConfig::with_policy(PolicyKind::OnDemand, 2))
    }

    fn small_cfg() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            admission_window: 8,
            replay_cache: 8,
            batch: 4,
            worker_delay_ns: 0,
        }
    }

    fn req(client: ClientId, seq: SeqNo, op: Op) -> Request {
        Request {
            client_id: client,
            seq_no: seq,
            sent_at_ns: 0,
            op,
        }
    }

    /// Reap until `want` acks have arrived (delivery order).
    fn reap(server: &Server, client: ClientId, want: usize) -> Vec<Reply> {
        let mut got = Vec::new();
        while got.len() < want {
            let acks = server.take_acks(client, true);
            assert!(
                !acks.is_empty() || server.is_dead(),
                "blocking reap returned empty on a live server"
            );
            got.extend(acks);
        }
        got
    }

    #[test]
    fn create_write_sync_close_round_trip() {
        let server = Server::start(engine(), small_cfg());
        server
            .submit(&req(
                1,
                1,
                Op::Create {
                    name: "a.dat".into(),
                    size_hint_blocks: None,
                },
            ))
            .unwrap();
        let acks = reap(&server, 1, 1);
        let Status::Handle(h) = acks[0].status else {
            panic!("create must return a handle, got {:?}", acks[0].status);
        };
        for (seq, op) in [
            (
                2,
                Op::Write {
                    handle: h,
                    stream: 0,
                    offset: 0,
                    len: 8,
                },
            ),
            (3, Op::Sync),
            (4, Op::Close { handle: h }),
        ] {
            server.submit(&req(1, seq, op)).unwrap();
        }
        let acks = reap(&server, 1, 3);
        assert!(acks.iter().all(|a| a.status == Status::Done), "{acks:?}");
        assert_eq!(
            acks.iter().map(|a| a.seq_no).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "acks arrive in program order"
        );
        let fs = server.into_fs();
        assert_eq!(fs.file_size(OpenFile(FileId(h))), 8);
    }

    #[test]
    fn request_flow_feeds_the_heat_recorder() {
        let server = Server::start(engine(), small_cfg());
        server
            .submit(&req(
                1,
                1,
                Op::Create {
                    name: "hot.dat".into(),
                    size_hint_blocks: None,
                },
            ))
            .unwrap();
        let Status::Handle(h) = reap(&server, 1, 1)[0].status else {
            panic!()
        };
        for seq in 2..8 {
            server
                .submit(&req(
                    1,
                    seq,
                    Op::Write {
                        handle: h,
                        stream: 0,
                        offset: (seq - 2) * 4,
                        len: 4,
                    },
                ))
                .unwrap();
        }
        reap(&server, 1, 6);
        let feed = server.heat_feed();
        let mine = feed
            .iter()
            .find(|&&(f, ..)| f == OpenFile(FileId(h)))
            .expect("served writes must appear in the heat feed");
        assert!(mine.2 >= 6, "six writes recorded, got {mine:?}");
        // The drain is destructive: a quiet interval reads back empty.
        assert!(server.heat_feed().is_empty());
        server.shutdown();
    }

    #[test]
    fn write_ack_implies_wal_durability() {
        let server = Server::start(engine(), small_cfg());
        server
            .submit(&req(
                1,
                1,
                Op::Create {
                    name: "d.dat".into(),
                    size_hint_blocks: None,
                },
            ))
            .unwrap();
        let Status::Handle(h) = reap(&server, 1, 1)[0].status else {
            panic!()
        };
        server
            .submit(&req(
                1,
                2,
                Op::Write {
                    handle: h,
                    stream: 0,
                    offset: 0,
                    len: 4,
                },
            ))
            .unwrap();
        let ack = reap(&server, 1, 1);
        assert_eq!(ack[0].status, Status::Done);
        // The contract: by the time the write's ack exists, its record is
        // under the durable watermark.
        assert!(
            server.fs().wal_durable_watermark() >= 1,
            "acked write not covered by the durable watermark"
        );
        server.shutdown();
    }

    #[test]
    fn duplicate_resend_replays_without_reexecution() {
        let server = Server::start(engine(), small_cfg());
        let create = req(
            9,
            1,
            Op::Create {
                name: "dup.dat".into(),
                size_hint_blocks: None,
            },
        );
        server.submit(&create).unwrap();
        let first = reap(&server, 9, 1)[0];
        // The client "loses" the ack and re-sends the same request.
        server.submit(&create).unwrap();
        let second = reap(&server, 9, 1)[0];
        assert_eq!(first, second, "replay must return the original reply");
        let stats = server.stats();
        assert_eq!(stats.executed, 1, "the duplicate must not re-execute");
        assert_eq!(stats.dup_replays, 1);
        // Exactly one file exists.
        let fs = server.into_fs();
        assert!(fs.open("dup.dat").is_some());
    }

    #[test]
    fn seq_gap_is_refused_without_execution() {
        let server = Server::start(engine(), small_cfg());
        server.submit(&req(3, 5, Op::Sync)).unwrap();
        let acks = reap(&server, 3, 1);
        assert_eq!(acks[0].status, Status::SeqGap);
        assert_eq!(server.stats().executed, 0);
        server.shutdown();
    }

    #[test]
    fn ops_on_unknown_handles_are_not_found() {
        let server = Server::start(engine(), small_cfg());
        server
            .submit(&req(
                4,
                1,
                Op::Write {
                    handle: 999,
                    stream: 0,
                    offset: 0,
                    len: 4,
                },
            ))
            .unwrap();
        server
            .submit(&req(
                4,
                2,
                Op::Open {
                    name: "nope".into(),
                },
            ))
            .unwrap();
        let acks = reap(&server, 4, 2);
        assert_eq!(acks[0].status, Status::NotFound);
        assert_eq!(acks[1].status, Status::NotFound);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let server = Server::start(engine(), small_cfg());
        server.shutdown();
        server.shutdown();
        assert!(server.is_dead());
        assert_eq!(server.submit(&req(1, 1, Op::Sync)), Err(ServerDead));
    }
}
