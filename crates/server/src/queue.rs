//! Bounded MPSC frame queue with parking backpressure.
//!
//! Each worker shard owns one [`BoundedQueue`]. Submitters push encoded
//! request frames; the shard's worker drains them in arrival order. The
//! queue is the *backpressure* point of the service: when it is full the
//! submitter **parks** on a condvar until the worker frees space — frames
//! are never dropped and never reordered, so a client's program order is
//! exactly the queue order of its frames (each client maps to one shard).
//!
//! Lock discipline: the internal mutex is rank
//! [`LockClass::ServerQueue`] — above every engine lock (a worker always
//! releases the queue before touching `ConcurrentFs`), below
//! `ServerSession` (a submitter may hold its session while enqueueing).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use mif_alloc::lockorder::{self, LockClass};

/// Push failed because the queue was closed (server shut down or died
/// mid-flush); the frame is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueClosed(pub Vec<u8>);

struct Inner {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// A bounded, closeable, park-don't-drop frame queue.
pub struct BoundedQueue {
    inner: Mutex<Inner>,
    /// Signalled when frames arrive (or on close): wakes the worker.
    not_empty: Condvar,
    /// Signalled when space frees (or on close): wakes parked submitters.
    not_full: Condvar,
    capacity: usize,
    /// Times a push had to park because the queue was full.
    parks: AtomicU64,
    /// High-water mark of the queue depth.
    max_depth: AtomicU64,
}

impl BoundedQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can never accept");
        BoundedQueue {
            inner: Mutex::new(Inner {
                frames: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            parks: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// Enqueue one frame, parking while the queue is full. Frames from one
    /// submitter thread enter in call order. Returns the frame back if the
    /// queue is (or becomes, while parked) closed.
    pub fn push(&self, frame: Vec<u8>) -> Result<(), QueueClosed> {
        let token = lockorder::acquire(LockClass::ServerQueue);
        let mut inner = self.inner.lock().unwrap();
        if inner.frames.len() >= self.capacity && !inner.closed {
            self.parks.fetch_add(1, Ordering::Relaxed);
            while inner.frames.len() >= self.capacity && !inner.closed {
                inner = self.not_full.wait(inner).unwrap();
            }
        }
        if inner.closed {
            drop(inner);
            drop(token);
            return Err(QueueClosed(frame));
        }
        inner.frames.push_back(frame);
        let depth = inner.frames.len() as u64;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        drop(inner);
        drop(token);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue up to `max` frames in arrival order, blocking while the
    /// queue is empty and open. Returns an empty vec only when the queue
    /// is closed *and* fully drained — the worker's exit signal.
    pub fn pop_batch(&self, max: usize) -> Vec<Vec<u8>> {
        let token = lockorder::acquire(LockClass::ServerQueue);
        let mut inner = self.inner.lock().unwrap();
        while inner.frames.is_empty() && !inner.closed {
            inner = self.not_empty.wait(inner).unwrap();
        }
        let take = inner.frames.len().min(max);
        let batch: Vec<Vec<u8>> = inner.frames.drain(..take).collect();
        drop(inner);
        drop(token);
        if !batch.is_empty() {
            // Space freed: wake every parked submitter (they re-check).
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the queue: parked submitters fail their push, the worker
    /// drains what remains and then sees the empty-and-closed exit signal.
    pub fn close(&self) {
        let token = lockorder::acquire(LockClass::ServerQueue);
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        drop(token);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Times a push parked on a full queue.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_a_submitter() {
        let q = BoundedQueue::new(8);
        for i in 0u8..5 {
            q.push(vec![i]).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(q.pop_batch(10), vec![vec![3], vec![4]]);
        assert_eq!(q.max_depth(), 5);
        assert_eq!(q.parks(), 0);
    }

    #[test]
    fn full_queue_parks_then_resumes_without_loss() {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0u8..10 {
                    q.push(vec![i]).unwrap();
                }
            })
        };
        // Let the producer fill the queue and park.
        std::thread::sleep(Duration::from_millis(20));
        let mut got = Vec::new();
        while got.len() < 10 {
            got.extend(q.pop_batch(4));
        }
        producer.join().unwrap();
        let want: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i]).collect();
        assert_eq!(got, want, "parking must not drop or reorder");
        assert!(q.parks() > 0, "capacity 2 with 10 pushes must have parked");
        assert!(q.max_depth() <= 2);
    }

    #[test]
    fn close_wakes_parked_submitter_with_its_frame() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(vec![0]).unwrap();
        let parked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(vec![1]))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(parked.join().unwrap(), Err(QueueClosed(vec![1])));
        // The worker still drains what made it in, then gets the exit
        // signal.
        assert_eq!(q.pop_batch(8), vec![vec![0]]);
        assert!(q.pop_batch(8).is_empty());
    }

    #[test]
    fn pop_blocks_until_a_frame_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(1))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(vec![7]).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![vec![7]]);
    }
}
