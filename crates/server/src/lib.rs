//! # mif-server — the message-passing service front-end
//!
//! PR-5/6 made the engine thread-safe; this crate makes it a *service*.
//! Simulated clients submit framed requests (create / open / write /
//! read / sync / close) carrying an explicit `(client_id, seq_no)` pair
//! over bounded queues into worker shards that drive
//! [`mif_core::ConcurrentFs`]. Three properties define the protocol —
//! `docs/SERVER.md` is the full contract:
//!
//! * **Idempotent replay.** The [`session`] table records, per client,
//!   the last applied seq_no and a bounded cache of recent replies. A
//!   duplicate (a re-send after a lost ack, a client restart, a dup
//!   storm) is answered with the *original* result without touching the
//!   engine: at-least-once delivery, exactly-once effects.
//! * **Durable-commit acks.** A mutating request is acknowledged only
//!   after the group-commit WAL's durable watermark passes its record —
//!   and never if the flush it rode was torn by a simulated power cut
//!   ([`server`] module docs walk the frozen-check ordering argument).
//! * **Pipelining with backpressure.** Clients keep a configurable
//!   window of requests in flight; full queues and full admission
//!   windows **park** the submitter, never drop and never reorder a
//!   client's requests.
//!
//! Layering: the server's locks ([`mif_alloc::lockorder::LockClass`]
//! ranks `ServerQueue` and `ServerSession`) sit strictly *above* every
//! engine lock and are never held across an engine call, so the service
//! layer cannot extend the engine's lock graph into a cycle.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mif_server::{ClientConn, Op, Server, ServerConfig};
//! use mif_core::{ConcurrentFs, FsConfig};
//! use mif_alloc::PolicyKind;
//!
//! let fs = ConcurrentFs::new(FsConfig::with_policy(PolicyKind::OnDemand, 2));
//! let server = Server::start(fs, ServerConfig::default());
//!
//! let mut client = ClientConn::connect(Arc::clone(&server), 1, 8, false);
//! let create = client.submit(Op::Create { name: "a.dat".into(), size_hint_blocks: None }).unwrap();
//! client.drain();
//! let handle = client.handle_from(create).unwrap();
//! client.submit(Op::Write { handle, stream: 0, offset: 0, len: 8 }).unwrap();
//! client.submit(Op::Sync).unwrap();
//! client.drain();
//! assert!(client.replies().iter().all(|r| r.status.ok()));
//!
//! // By the ack contract, the write's WAL record is already durable.
//! assert!(server.fs().wal_durable_watermark() >= 1);
//! server.shutdown();
//! ```

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod session;

pub use client::ClientConn;
pub use protocol::{
    decode_request, encode_request, ClientId, FrameError, Handle, Op, Reply, Request, SeqNo, Status,
};
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig, ServerDead, ServerStats};
pub use session::{Dispatch, Session, SessionTable};
