//! The client wire protocol: framed, checksummed, explicitly sequenced.
//!
//! Every request a client sends is one self-describing byte frame carrying
//! the two fields the whole service contract hangs off:
//!
//! * **`client_id`** — the durable identity of the request stream. It
//!   survives process restarts and PID reuse: a client that crashes and
//!   reconnects presents the *same* `client_id`, which is what lets the
//!   server's session table recognize re-sent requests.
//! * **`seq_no`** — the position in that client's program order, assigned
//!   contiguously from 1 by the client library. The server applies
//!   `seq_no == last_applied + 1` exactly once; anything at or below
//!   `last_applied` is a duplicate and is answered from the reply cache
//!   without re-execution.
//!
//! # Frame layout (little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MIFQ"
//! 4       4     frame length in bytes, including the checksum
//! 8       8     client_id
//! 16      8     seq_no
//! 24      8     sent_at_ns (client clock at submit; ack-latency accounting)
//! 32      1     opcode
//! 33      ...   op payload (see below)
//! len-8   8     FNV-1a 64 checksum of bytes [0, len-8)
//! ```
//!
//! Op payloads:
//!
//! | op      | payload |
//! |---------|---------|
//! | create  | `u16` name length, name bytes (UTF-8), `u8` has-hint, `u64` hint blocks |
//! | open    | `u16` name length, name bytes |
//! | write   | `u64` handle, `u32` stream, `u64` offset, `u64` len |
//! | read    | `u64` handle, `u32` stream, `u64` offset, `u64` len |
//! | sync    | (empty) |
//! | close   | `u64` handle |
//!
//! Decoding is strict: bad magic, a length that disagrees with the buffer,
//! a checksum mismatch, an unknown opcode, non-UTF-8 names or trailing
//! bytes are each their own [`FrameError`] — a corrupted frame is refused
//! before it can reach the engine.

/// Durable client identity (survives restart / PID reuse).
pub type ClientId = u64;

/// Position in one client's program order (first request is 1).
pub type SeqNo = u64;

/// A server-issued file handle ([`mif_alloc::FileId`] raw value).
pub type Handle = u64;

const MAGIC: [u8; 4] = *b"MIFQ";
const HEADER_BYTES: usize = 33;
const CHECKSUM_BYTES: usize = 8;

/// One operation a client can ask of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create a file; replies with its handle.
    Create {
        name: String,
        size_hint_blocks: Option<u64>,
    },
    /// Open by name; replies with the handle or `NotFound`.
    Open { name: String },
    /// Write `len` blocks at `offset` as the client's `stream`. Mutating:
    /// its ack implies the WAL record is durable.
    Write {
        handle: Handle,
        stream: u32,
        offset: u64,
        len: u64,
    },
    /// Read `len` blocks at `offset` (serviced at the next flush).
    Read {
        handle: Handle,
        stream: u32,
        offset: u64,
        len: u64,
    },
    /// Durability barrier: flush every queued write and the WAL. Mutating.
    Sync,
    /// Drop one handle reference. Mutating (the last close releases
    /// preallocation windows).
    Close { handle: Handle },
}

impl Op {
    /// Does this op change state? Mutating acks gate on the durable
    /// watermark; read-only acks do not.
    pub fn is_mutating(&self) -> bool {
        !matches!(self, Op::Open { .. } | Op::Read { .. })
    }

    fn opcode(&self) -> u8 {
        match self {
            Op::Create { .. } => 1,
            Op::Open { .. } => 2,
            Op::Write { .. } => 3,
            Op::Read { .. } => 4,
            Op::Sync => 5,
            Op::Close { .. } => 6,
        }
    }
}

/// One framed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub client_id: ClientId,
    pub seq_no: SeqNo,
    /// Client clock (nanoseconds on the shared simulated timeline) when
    /// the request was submitted; the worker stamps the matching ack time
    /// so ack latency is measured submit → ack-issued, not submit → reap.
    pub sent_at_ns: u64,
    pub op: Op,
}

/// Result carried by a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Create/open succeeded; here is the file handle.
    Handle(Handle),
    /// The op executed.
    Done,
    /// Open of an unknown name, or an op on a dead handle.
    NotFound,
    /// An engine fault surfaced (e.g. a powered-off OST), reported with
    /// the failing OST index.
    IoError { ost: u32 },
    /// Duplicate older than the replay cache window — the client is
    /// re-sending something acknowledged long ago.
    TooOld,
    /// `seq_no` skipped ahead of `last_applied + 1`: a protocol violation
    /// (the transport never reorders within a client).
    SeqGap,
    /// Malformed op (e.g. a zero-length write).
    Invalid,
}

impl Status {
    /// Did the op succeed?
    pub fn ok(&self) -> bool {
        matches!(self, Status::Handle(_) | Status::Done)
    }
}

/// One acknowledgement, delivered to the client's session inbox.
///
/// For a mutating request the delivery of this reply *is* the durability
/// contract: the server issues it only after the group-commit WAL's
/// durable watermark has passed the request's record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    pub client_id: ClientId,
    pub seq_no: SeqNo,
    pub status: Status,
    /// Server clock when the ack was issued. A replayed (duplicate)
    /// request carries the *original* execution's ack time.
    pub acked_at_ns: u64,
}

/// Why a frame was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    TooShort,
    BadMagic,
    BadLength,
    BadChecksum,
    BadOpcode(u8),
    BadName,
    TrailingBytes,
}

/// FNV-1a 64 over `bytes` — cheap, deterministic, and plenty for
/// detecting torn or corrupted frames in the queues.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode `req` into one checksummed frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, 0); // frame length, patched below
    put_u64(&mut out, req.client_id);
    put_u64(&mut out, req.seq_no);
    put_u64(&mut out, req.sent_at_ns);
    out.push(req.op.opcode());
    match &req.op {
        Op::Create {
            name,
            size_hint_blocks,
        } => {
            put_u16(&mut out, name.len() as u16);
            out.extend_from_slice(name.as_bytes());
            out.push(size_hint_blocks.is_some() as u8);
            put_u64(&mut out, size_hint_blocks.unwrap_or(0));
        }
        Op::Open { name } => {
            put_u16(&mut out, name.len() as u16);
            out.extend_from_slice(name.as_bytes());
        }
        Op::Write {
            handle,
            stream,
            offset,
            len,
        }
        | Op::Read {
            handle,
            stream,
            offset,
            len,
        } => {
            put_u64(&mut out, *handle);
            put_u32(&mut out, *stream);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *len);
        }
        Op::Sync => {}
        Op::Close { handle } => {
            put_u64(&mut out, *handle);
        }
    }
    let len = (out.len() + CHECKSUM_BYTES) as u32;
    out[4..8].copy_from_slice(&len.to_le_bytes());
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.pos + n > self.buf.len() {
            return Err(FrameError::TooShort);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    fn name(&mut self) -> Result<String, FrameError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadName)
    }
}

/// Decode one frame. Strict: every byte is accounted for and the checksum
/// must match.
pub fn decode_request(frame: &[u8]) -> Result<Request, FrameError> {
    if frame.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(FrameError::TooShort);
    }
    if frame[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let declared = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
    if declared != frame.len() {
        return Err(FrameError::BadLength);
    }
    let body = &frame[..frame.len() - CHECKSUM_BYTES];
    let sum = u64::from_le_bytes(frame[frame.len() - CHECKSUM_BYTES..].try_into().unwrap());
    if checksum(body) != sum {
        return Err(FrameError::BadChecksum);
    }
    let mut c = Cursor { buf: body, pos: 8 };
    let client_id = c.u64()?;
    let seq_no = c.u64()?;
    let sent_at_ns = c.u64()?;
    let opcode = c.u8()?;
    let op = match opcode {
        1 => {
            let name = c.name()?;
            let has_hint = c.u8()? != 0;
            let hint = c.u64()?;
            Op::Create {
                name,
                size_hint_blocks: has_hint.then_some(hint),
            }
        }
        2 => Op::Open { name: c.name()? },
        3 | 4 => {
            let handle = c.u64()?;
            let stream = c.u32()?;
            let offset = c.u64()?;
            let len = c.u64()?;
            if opcode == 3 {
                Op::Write {
                    handle,
                    stream,
                    offset,
                    len,
                }
            } else {
                Op::Read {
                    handle,
                    stream,
                    offset,
                    len,
                }
            }
        }
        5 => Op::Sync,
        6 => Op::Close { handle: c.u64()? },
        other => return Err(FrameError::BadOpcode(other)),
    };
    if c.pos != body.len() {
        return Err(FrameError::TrailingBytes);
    }
    Ok(Request {
        client_id,
        seq_no,
        sent_at_ns,
        op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Create {
                name: "a/b.dat".into(),
                size_hint_blocks: Some(4096),
            },
            Op::Create {
                name: "".into(),
                size_hint_blocks: None,
            },
            Op::Open {
                name: "shared.out".into(),
            },
            Op::Write {
                handle: 7,
                stream: 3,
                offset: 1 << 40,
                len: 16,
            },
            Op::Read {
                handle: u64::MAX,
                stream: 0,
                offset: 0,
                len: 1,
            },
            Op::Sync,
            Op::Close { handle: 9 },
        ]
    }

    #[test]
    fn every_op_round_trips() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let req = Request {
                client_id: 0xDEAD_0000 + i as u64,
                seq_no: i as u64 + 1,
                sent_at_ns: 123_456_789,
                op,
            };
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame), Ok(req.clone()), "op {i}");
        }
    }

    #[test]
    fn corrupting_any_byte_is_detected() {
        let req = Request {
            client_id: 42,
            seq_no: 7,
            sent_at_ns: 1,
            op: Op::Write {
                handle: 3,
                stream: 1,
                offset: 64,
                len: 8,
            },
        };
        let frame = encode_request(&req);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert_ne!(
                decode_request(&bad),
                Ok(req.clone()),
                "flipping byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_refused() {
        let frame = encode_request(&Request {
            client_id: 1,
            seq_no: 1,
            sent_at_ns: 0,
            op: Op::Sync,
        });
        for cut in 0..frame.len() {
            assert!(
                decode_request(&frame[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut long = frame.clone();
        long.push(0);
        assert!(decode_request(&long).is_err(), "trailing byte accepted");
    }

    #[test]
    fn mutating_classification_matches_the_ack_contract() {
        let muts: Vec<bool> = sample_ops().iter().map(|o| o.is_mutating()).collect();
        assert_eq!(muts, vec![true, true, false, true, false, true, true]);
    }
}
