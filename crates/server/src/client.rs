//! A simulated client: windowed pipelining, crash/restart, dup storms.
//!
//! [`ClientConn`] is the client-side half of the protocol contract. It
//! assigns `seq_no`s contiguously from 1, keeps every un-acked request in
//! a send buffer (the *unacked suffix*), and pipelines up to `window`
//! requests before blocking on acks. Because acks arrive in program order
//! (one queue, one worker per client), reaping just matches the inbox
//! against the front of the send buffer.
//!
//! Two failure behaviours drive the test layer:
//!
//! * [`ClientConn::restart`] — the client process "crashes" (losing any
//!   acks it had not reaped) and reconnects with the same `client_id`,
//!   re-sending its entire unacked suffix with the *same* seq_nos. The
//!   server's session table replays what was already applied and executes
//!   only the genuinely new tail — at-least-once delivery, exactly-once
//!   effects.
//! * [`ClientConn::resend_acked`] — a duplicate storm: re-send requests
//!   that were already acknowledged (from the recorded send log). Every
//!   one must come back as a replay or `TooOld`, never a re-execution.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::protocol::{ClientId, Op, Reply, Request, SeqNo, Status};
use crate::server::{Server, ServerDead};

/// One client connection. See the module docs.
pub struct ClientConn {
    server: Arc<Server>,
    client_id: ClientId,
    /// The client-side pipelining window (how many requests may be
    /// outstanding before `submit` blocks reaping). Kept at or below the
    /// server's admission window in the benches so admission parking is
    /// the server's decision, not the client's.
    window: usize,
    next_seq: SeqNo,
    /// Highest seq_no acked (and reaped) so far.
    highest_acked: SeqNo,
    /// Requests submitted but not yet acked, in program order.
    unacked: VecDeque<Request>,
    /// First-ack replies, in program order (the client's view of results).
    replies: Vec<Reply>,
    /// Stale replies absorbed (duplicates of already-acked seq_nos).
    stale_seen: u64,
    /// Full send log for duplicate storms (tests only; `None` keeps the
    /// 100k-client bench's memory flat).
    sent_log: Option<Vec<Request>>,
}

impl ClientConn {
    /// Connect as `client_id` with a pipelining `window` (>= 1).
    /// `record_log` keeps the full send log for [`Self::resend_acked`].
    pub fn connect(
        server: Arc<Server>,
        client_id: ClientId,
        window: usize,
        record_log: bool,
    ) -> Self {
        assert!(window >= 1, "a zero window can never submit");
        ClientConn {
            server,
            client_id,
            window,
            next_seq: 1,
            highest_acked: 0,
            unacked: VecDeque::new(),
            replies: Vec::new(),
            stale_seen: 0,
            sent_log: record_log.then(Vec::new),
        }
    }

    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    /// First-ack replies reaped so far, in program order.
    pub fn replies(&self) -> &[Reply] {
        &self.replies
    }

    /// Duplicate replies absorbed (each one a seq_no at or below the
    /// highest already acked).
    pub fn stale_seen(&self) -> u64 {
        self.stale_seen
    }

    /// Requests submitted but not yet acked, in program order.
    pub fn unacked(&self) -> impl Iterator<Item = &Request> {
        self.unacked.iter()
    }

    /// The full send log, in program order — every request with its
    /// submit-time `sent_at_ns` stamp. Needs `record_log = true`; used
    /// by benches to pair sends with acks for end-to-end latency.
    pub fn sent_requests(&self) -> &[Request] {
        self.sent_log
            .as_deref()
            .expect("sent_requests needs record_log = true")
    }

    /// Submit the next op in this client's program. Blocks (reaping)
    /// while the pipelining window is full; never skips or reorders.
    pub fn submit(&mut self, op: Op) -> Result<SeqNo, ServerDead> {
        while self.unacked.len() >= self.window {
            if !self.reap(true) {
                return Err(ServerDead);
            }
        }
        let req = Request {
            client_id: self.client_id,
            seq_no: self.next_seq,
            sent_at_ns: self.server.now_ns(),
            op,
        };
        self.next_seq += 1;
        self.unacked.push_back(req.clone());
        if let Some(log) = &mut self.sent_log {
            log.push(req.clone());
        }
        self.server.submit(&req)?;
        Ok(req.seq_no)
    }

    /// Absorb whatever acks the server has delivered. With `wait`, parks
    /// for at least one. Returns `false` once the server is dead and the
    /// inbox is empty.
    pub fn reap(&mut self, wait: bool) -> bool {
        let acks = self.server.take_acks(self.client_id, wait);
        if acks.is_empty() {
            return !self.server.is_dead();
        }
        for ack in acks {
            if ack.seq_no <= self.highest_acked {
                // A duplicate's answer (replay / TooOld): already settled.
                self.stale_seen += 1;
                continue;
            }
            let front = self
                .unacked
                .front()
                .unwrap_or_else(|| panic!("ack for seq {} with nothing unacked", ack.seq_no));
            assert_eq!(
                ack.seq_no, front.seq_no,
                "acks must arrive in program order"
            );
            self.unacked.pop_front();
            self.highest_acked = ack.seq_no;
            self.replies.push(ack);
        }
        true
    }

    /// Block until every submitted request is acked. Returns `false` if
    /// the server died first (the remaining suffix stays unacked).
    pub fn drain(&mut self) -> bool {
        while !self.unacked.is_empty() {
            if !self.reap(true) {
                return false;
            }
        }
        true
    }

    /// Wait until `n` duplicate answers have been absorbed (after a
    /// [`Self::resend_acked`] storm). Returns `false` if the server died.
    pub fn await_stale(&mut self, n: u64) -> bool {
        while self.stale_seen < n {
            if !self.reap(true) {
                return false;
            }
        }
        true
    }

    /// Crash and reconnect: the process dies losing its un-reaped acks,
    /// then a new connection with the same `client_id` re-sends the whole
    /// unacked suffix (same seq_nos, same ops — the frames are replayed
    /// verbatim from the send buffer). The server replays what it already
    /// applied and executes only the new tail.
    pub fn restart(self) -> Result<ClientConn, ServerDead> {
        let mut conn = ClientConn {
            server: self.server,
            client_id: self.client_id,
            window: self.window,
            next_seq: self.next_seq,
            highest_acked: self.highest_acked,
            unacked: VecDeque::new(),
            replies: self.replies,
            stale_seen: self.stale_seen,
            sent_log: self.sent_log,
        };
        for req in self.unacked {
            conn.unacked.push_back(req.clone());
            conn.server.submit(&req)?;
        }
        Ok(conn)
    }

    /// Duplicate storm: re-send every already-acked request from the send
    /// log (connect with `record_log = true`). Returns how many went out;
    /// pair with [`Self::await_stale`] to absorb the answers.
    pub fn resend_acked(&mut self) -> Result<u64, ServerDead> {
        let log = self
            .sent_log
            .clone()
            .expect("resend_acked needs record_log = true");
        let mut sent = 0;
        for req in &log {
            if req.seq_no <= self.highest_acked {
                self.server.submit(req)?;
                sent += 1;
            }
        }
        Ok(sent)
    }

    /// Convenience: the handle from the reply to `seq` (a create/open).
    pub fn handle_from(&self, seq: SeqNo) -> Option<u64> {
        self.replies.iter().find(|r| r.seq_no == seq).map(|r| {
            let Status::Handle(h) = r.status else {
                panic!("reply to seq {seq} carries no handle: {:?}", r.status)
            };
            h
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use mif_alloc::PolicyKind;
    use mif_core::{ConcurrentFs, FsConfig};

    fn server() -> Arc<Server> {
        Server::start(
            ConcurrentFs::new(FsConfig::with_policy(PolicyKind::OnDemand, 2)),
            ServerConfig {
                workers: 2,
                queue_capacity: 32,
                admission_window: 8,
                replay_cache: 16,
                batch: 8,
                worker_delay_ns: 0,
            },
        )
    }

    #[test]
    fn pipelined_program_acks_in_order() {
        let srv = server();
        let mut c = ClientConn::connect(Arc::clone(&srv), 1, 4, false);
        let create = c
            .submit(Op::Create {
                name: "c.dat".into(),
                size_hint_blocks: None,
            })
            .unwrap();
        assert!(c.drain());
        let h = c.handle_from(create).unwrap();
        for i in 0..10 {
            c.submit(Op::Write {
                handle: h,
                stream: 0,
                offset: i * 4,
                len: 4,
            })
            .unwrap();
        }
        c.submit(Op::Sync).unwrap();
        assert!(c.drain());
        let seqs: Vec<SeqNo> = c.replies().iter().map(|r| r.seq_no).collect();
        assert_eq!(seqs, (1..=12).collect::<Vec<_>>());
        assert!(c.replies().iter().all(|r| r.status.ok()));
        srv.shutdown();
    }

    #[test]
    fn restart_resends_only_the_unacked_suffix() {
        let srv = server();
        let mut c = ClientConn::connect(Arc::clone(&srv), 5, 8, false);
        let create = c
            .submit(Op::Create {
                name: "r.dat".into(),
                size_hint_blocks: None,
            })
            .unwrap();
        assert!(c.drain());
        let h = c.handle_from(create).unwrap();
        for i in 0..6 {
            c.submit(Op::Write {
                handle: h,
                stream: 0,
                offset: i * 4,
                len: 4,
            })
            .unwrap();
        }
        // Crash without reaping: every write is still "unacked" from the
        // client's point of view even though the server may have applied
        // (and inbox-delivered) some of them.
        let mut c = c.restart().unwrap();
        assert!(c.drain());
        assert_eq!(c.replies().len(), 7, "create + 6 writes, exactly once");
        let stats = srv.stats();
        assert_eq!(stats.executed, 7, "re-sent suffix must not double-apply");
        assert!(
            stats.dup_replays > 0,
            "the applied prefix must have replayed"
        );
        srv.shutdown();
    }

    #[test]
    fn duplicate_storm_is_fully_absorbed_without_reexecution() {
        let srv = server();
        let mut c = ClientConn::connect(Arc::clone(&srv), 9, 4, true);
        c.submit(Op::Create {
            name: "s.dat".into(),
            size_hint_blocks: None,
        })
        .unwrap();
        c.submit(Op::Sync).unwrap();
        assert!(c.drain());
        let executed_before = srv.stats().executed;
        let sent = c.resend_acked().unwrap();
        assert_eq!(sent, 2);
        assert!(c.await_stale(sent));
        assert_eq!(srv.stats().executed, executed_before, "storm re-executed");
        srv.shutdown();
    }
}
