//! Per-client sessions: the idempotency and admission state.
//!
//! The session table is what turns at-least-once delivery into
//! exactly-once *effects*. Each client has one [`Session`] keyed by its
//! durable `client_id`, holding:
//!
//! * **`last_applied`** — the highest `seq_no` whose op has executed. A
//!   worker consults it before touching the engine: `seq == last + 1`
//!   executes, `seq <= last` is a duplicate, `seq > last + 1` is a
//!   protocol violation (the transport never reorders within a client).
//! * **the replay cache** — a bounded ring of the most recent replies.
//!   A duplicate is answered from here with the *original* result (same
//!   status, same handle, same ack timestamp) without re-execution. A
//!   duplicate that has fallen off the ring gets [`Status::TooOld`] —
//!   still never re-executed.
//! * **the reply inbox** — acks the client has not reaped yet.
//! * **the in-flight counter** — admission control: a submitter parks in
//!   [`Session::admit`] until the client's unacked count drops below the
//!   per-client window.
//!
//! Lock discipline: the session mutex is rank
//! [`LockClass::ServerSession`], the outermost rank of the whole stack.
//! Workers take it only between engine calls (dispatch decision before,
//! ack delivery after), never across one.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use mif_alloc::lockorder::{self, LockClass};

use crate::protocol::{ClientId, Reply, SeqNo, Status};

/// What a worker should do with an arriving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dispatch {
    /// `seq_no == last_applied + 1`: execute it (exactly once).
    Execute,
    /// Duplicate with a cached result: deliver this original reply again,
    /// do not touch the engine.
    Replay(Reply),
    /// Duplicate older than the replay cache window: answer `TooOld`,
    /// do not touch the engine.
    TooOld,
    /// `seq_no` skipped ahead: protocol violation, answer `SeqGap`.
    Gap,
}

struct SessionState {
    last_applied: SeqNo,
    /// Ring of recent replies, oldest first; bounded by `cache_cap`.
    replay_cache: VecDeque<Reply>,
    /// Delivered-but-unreaped acks, in delivery order.
    inbox: VecDeque<Reply>,
    /// Requests admitted but not yet acked (admission window accounting).
    inflight: usize,
    /// Times `admit` had to park on a full window.
    admission_parks: u64,
}

/// One client's service state. See the module docs.
pub struct Session {
    state: Mutex<SessionState>,
    /// Wakes parked submitters (window space) and reapers (new acks).
    changed: Condvar,
    cache_cap: usize,
}

impl Session {
    fn new(cache_cap: usize) -> Self {
        assert!(cache_cap > 0, "a session needs at least one cached reply");
        Session {
            state: Mutex::new(SessionState {
                last_applied: 0,
                replay_cache: VecDeque::with_capacity(cache_cap),
                inbox: VecDeque::new(),
                inflight: 0,
                admission_parks: 0,
            }),
            changed: Condvar::new(),
            cache_cap,
        }
    }

    /// Admission control: park until this client's unacked count is below
    /// `window`, then count the new request in. Returns `false` (without
    /// admitting) once `dead` is set — a power-cut must not strand parked
    /// submitters forever.
    pub fn admit(&self, window: usize, dead: &AtomicBool) -> bool {
        let token = lockorder::acquire(LockClass::ServerSession);
        let mut st = self.state.lock().unwrap();
        if st.inflight >= window {
            st.admission_parks += 1;
        }
        while st.inflight >= window {
            if dead.load(Ordering::Acquire) {
                return false;
            }
            // Timed wait so a death that never delivers acks still wakes
            // us to observe the flag.
            let (guard, _) = self
                .changed
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap();
            st = guard;
        }
        if dead.load(Ordering::Acquire) {
            return false;
        }
        st.inflight += 1;
        drop(st);
        drop(token);
        true
    }

    /// Classify an arriving `seq_no` against this session's history.
    pub fn dispatch(&self, seq_no: SeqNo) -> Dispatch {
        let token = lockorder::acquire(LockClass::ServerSession);
        let st = self.state.lock().unwrap();
        let d = if seq_no == st.last_applied + 1 {
            Dispatch::Execute
        } else if seq_no > st.last_applied {
            Dispatch::Gap
        } else if let Some(r) = st.replay_cache.iter().find(|r| r.seq_no == seq_no) {
            Dispatch::Replay(*r)
        } else {
            Dispatch::TooOld
        };
        drop(st);
        drop(token);
        d
    }

    /// Record an executed request *at execute time*, before its ack is
    /// issued: advance `last_applied` and cache the reply provisionally
    /// (`acked_at_ns` still 0 until [`Self::deliver_applied`] stamps it).
    /// This is what keeps a batch internally consistent — request `n+1`
    /// of the same batch dispatches against `last_applied = n` even
    /// though neither ack has passed the durability gate yet.
    pub fn mark_applied(&self, reply: Reply) {
        let token = lockorder::acquire(LockClass::ServerSession);
        let mut st = self.state.lock().unwrap();
        debug_assert_eq!(
            reply.seq_no,
            st.last_applied + 1,
            "mark_applied out of program order"
        );
        st.last_applied = reply.seq_no;
        if st.replay_cache.len() == self.cache_cap {
            st.replay_cache.pop_front();
        }
        st.replay_cache.push_back(reply);
        drop(st);
        drop(token);
    }

    /// Deliver the ack for a request recorded with [`Self::mark_applied`]
    /// (the durability gate has passed): stamp the cached reply's ack
    /// time, inbox the ack, release one admission slot.
    pub fn deliver_applied(&self, reply: Reply) {
        let token = lockorder::acquire(LockClass::ServerSession);
        let mut st = self.state.lock().unwrap();
        if let Some(cached) = st
            .replay_cache
            .iter_mut()
            .find(|c| c.seq_no == reply.seq_no)
        {
            cached.acked_at_ns = reply.acked_at_ns;
        }
        st.inbox.push_back(reply);
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        drop(token);
        self.changed.notify_all();
    }

    /// Record + deliver in one step (the single-request convenience used
    /// by tests; the server batches the two halves around its gate).
    pub fn deliver_new(&self, reply: Reply) {
        self.mark_applied(reply);
        self.deliver_applied(reply);
    }

    /// Deliver a duplicate's answer by replaying the cache *at delivery
    /// time* — so a duplicate that arrived in the same batch as its
    /// original picks up the original's final ack stamp. Falls back to
    /// `TooOld` if the entry aged out between dispatch and delivery.
    pub fn deliver_replay(&self, client_id: ClientId, seq_no: SeqNo, now_ns: u64) {
        let token = lockorder::acquire(LockClass::ServerSession);
        let mut st = self.state.lock().unwrap();
        let reply = st
            .replay_cache
            .iter()
            .find(|c| c.seq_no == seq_no)
            .copied()
            .unwrap_or(Reply {
                client_id,
                seq_no,
                status: Status::TooOld,
                acked_at_ns: now_ns,
            });
        st.inbox.push_back(reply);
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        drop(token);
        self.changed.notify_all();
    }

    /// Deliver a duplicate's answer (a cached replay, `TooOld`, or a
    /// `SeqGap`/`Invalid` rejection): inbox + admission slot only —
    /// `last_applied` and the cache are untouched.
    pub fn deliver_again(&self, reply: Reply) {
        let token = lockorder::acquire(LockClass::ServerSession);
        let mut st = self.state.lock().unwrap();
        st.inbox.push_back(reply);
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        drop(token);
        self.changed.notify_all();
    }

    /// Reap delivered acks in delivery order. With `wait`, parks until at
    /// least one ack exists or `dead` is set; without, returns what is
    /// there (possibly nothing).
    pub fn take_acks(&self, wait: bool, dead: &AtomicBool) -> Vec<Reply> {
        let token = lockorder::acquire(LockClass::ServerSession);
        let mut st = self.state.lock().unwrap();
        while wait && st.inbox.is_empty() {
            if dead.load(Ordering::Acquire) {
                break;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap();
            st = guard;
        }
        let acks: Vec<Reply> = st.inbox.drain(..).collect();
        drop(st);
        drop(token);
        acks
    }

    /// Highest applied seq_no (test/verification hook).
    pub fn last_applied(&self) -> SeqNo {
        let token = lockorder::acquire(LockClass::ServerSession);
        let v = self.state.lock().unwrap().last_applied;
        drop(token);
        v
    }

    /// Times a submitter parked on a full admission window.
    pub fn admission_parks(&self) -> u64 {
        let token = lockorder::acquire(LockClass::ServerSession);
        let v = self.state.lock().unwrap().admission_parks;
        drop(token);
        v
    }
}

/// The server-wide `client_id → Session` map. Sessions are created on
/// first contact and live for the server's lifetime — that persistence
/// across client restarts is the whole point.
pub struct SessionTable {
    sessions: RwLock<HashMap<ClientId, Arc<Session>>>,
    cache_cap: usize,
}

impl SessionTable {
    pub fn new(cache_cap: usize) -> Self {
        SessionTable {
            sessions: RwLock::new(HashMap::new()),
            cache_cap,
        }
    }

    /// The session for `client_id`, created if first contact.
    pub fn session(&self, client_id: ClientId) -> Arc<Session> {
        if let Some(s) = self.sessions.read().unwrap().get(&client_id) {
            return Arc::clone(s);
        }
        let mut map = self.sessions.write().unwrap();
        Arc::clone(
            map.entry(client_id)
                .or_insert_with(|| Arc::new(Session::new(self.cache_cap))),
        )
    }

    /// Number of sessions ever created.
    pub fn len(&self) -> usize {
        self.sessions.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of admission parks across all sessions.
    pub fn total_admission_parks(&self) -> u64 {
        self.sessions
            .read()
            .unwrap()
            .values()
            .map(|s| s.admission_parks())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;

    fn reply(seq: SeqNo, status: Status) -> Reply {
        Reply {
            client_id: 1,
            seq_no: seq,
            status,
            acked_at_ns: seq * 100,
        }
    }

    #[test]
    fn execute_then_duplicate_replays_the_original() {
        let s = Session::new(4);
        assert_eq!(s.dispatch(1), Dispatch::Execute);
        s.deliver_new(reply(1, Status::Handle(42)));
        // The same seq again: replay, with the original handle and the
        // original ack timestamp.
        assert_eq!(
            s.dispatch(1),
            Dispatch::Replay(reply(1, Status::Handle(42)))
        );
        assert_eq!(s.last_applied(), 1);
        // Next-in-order executes; skipping is a gap.
        assert_eq!(s.dispatch(2), Dispatch::Execute);
        assert_eq!(s.dispatch(5), Dispatch::Gap);
    }

    #[test]
    fn duplicates_beyond_the_cache_window_are_too_old() {
        let s = Session::new(2);
        for seq in 1..=4 {
            assert_eq!(s.dispatch(seq), Dispatch::Execute);
            s.deliver_new(reply(seq, Status::Done));
        }
        // Cache holds {3, 4}: 1 has aged out, but is still not executed.
        assert_eq!(s.dispatch(1), Dispatch::TooOld);
        assert_eq!(s.dispatch(3), Dispatch::Replay(reply(3, Status::Done)));
        assert_eq!(s.last_applied(), 4);
    }

    #[test]
    fn admission_window_parks_and_releases() {
        let dead = AtomicBool::new(false);
        let s = Arc::new(Session::new(8));
        assert!(s.admit(2, &dead));
        assert!(s.admit(2, &dead));
        let parked = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let dead = AtomicBool::new(false);
                s.admit(2, &dead)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        // An ack frees a slot; the parked submitter gets in.
        s.dispatch(1);
        s.deliver_new(reply(1, Status::Done));
        assert!(parked.join().unwrap());
        assert!(s.admission_parks() >= 1);
    }

    #[test]
    fn death_unparks_admission_and_reapers() {
        let dead = Arc::new(AtomicBool::new(false));
        let s = Arc::new(Session::new(2));
        assert!(s.admit(1, &dead));
        let handles: Vec<_> = [
            {
                let (s, dead) = (Arc::clone(&s), Arc::clone(&dead));
                std::thread::spawn(move || s.admit(1, &dead) as usize)
            },
            {
                let (s, dead) = (Arc::clone(&s), Arc::clone(&dead));
                std::thread::spawn(move || s.take_acks(true, &dead).len())
            },
        ]
        .into();
        std::thread::sleep(Duration::from_millis(20));
        dead.store(true, Ordering::Release);
        for h in handles {
            assert_eq!(h.join().unwrap(), 0, "death must refuse, not execute");
        }
    }

    #[test]
    fn table_persists_sessions_across_lookups() {
        let t = SessionTable::new(4);
        let a = t.session(7);
        a.dispatch(1);
        a.deliver_new(reply(1, Status::Done));
        // "Reconnecting" with the same client_id sees the same history.
        let b = t.session(7);
        assert_eq!(b.last_applied(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
        t.session(8);
        assert_eq!(t.len(), 2);
    }
}
