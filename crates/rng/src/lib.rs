//! # mif-rng — a dependency-free seeded PRNG
//!
//! Everything in this repository that needs randomness — workload
//! generators, fault-injection plans, property-style tests — must be
//! *replayable from a printed `u64` seed*. This crate provides exactly
//! that: a small, fast, deterministic generator (xoshiro256++ seeded via
//! SplitMix64) with the few sampling helpers the repo uses, and no
//! external dependencies, so the workspace builds hermetically without
//! registry access.
//!
//! The API deliberately mirrors the subset of the `rand` crate the code
//! base historically used (`SmallRng::seed_from_u64`, `gen_range`,
//! `gen::<f64>()`, `shuffle`), so call sites read identically.
//!
//! Determinism guarantee: for a given crate version, the same seed and
//! the same call sequence produce the same values on every platform.
//! Failure messages that print a seed are therefore sufficient to
//! reproduce a run exactly.

/// A small, fast, seedable PRNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Create a generator from a 64-bit seed. The full 256-bit state is
    /// derived with SplitMix64, so nearby seeds give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `range` (`a..b` or `a..=b`). Panics on an empty
    /// range, like `rand`.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A value of `T` from its "standard" distribution (`f64`/`f32` in
    /// `[0, 1)`, integers uniform over their domain, `bool` fair coin).
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's unbiased method.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free in the common case; retry only on the biased
        // sliver, which keeps the stream deterministic and unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types sampleable from their standard distribution via [`SmallRng::gen`].
pub trait Standard: Sized {
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait UniformRange {
    type Output;
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_uniform_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// In-place Fisher–Yates shuffling of slices.
pub trait SliceRandom {
    fn shuffle(&mut self, rng: &mut SmallRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values hit: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(19);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(0u8..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }
}
