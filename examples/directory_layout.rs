//! Figure 1(b) as ASCII art: where a directory's metadata lives on the MDS
//! disk under the traditional layout vs the embedded directory.
//!
//! Each character is one metadata block: 'D' directory-entry / content
//! block, 'I' inode-table block holding this directory's inodes, 'M' extra
//! mapping block, 'b' bitmap block, 'j' journal region, '.' other. An
//! `ls -l` must visit every D and I — look how far apart they sit in the
//! traditional layout, and how the embedded directory pulls everything
//! into one run.
//!
//! Run with: `cargo run --example directory_layout --release`

use mif::mds::{DirMode, Mds, MdsConfig, MdsLayout, ROOT_INO};

fn main() {
    // A compact layout so the picture fits a terminal.
    let layout = MdsLayout {
        journal_blocks: 64,
        dirtable_blocks: 16,
        group_blocks: 512,
        itable_blocks: 48,
        groups: 2,
    };

    for mode in [DirMode::Normal, DirMode::Embedded] {
        let mut cfg = MdsConfig::with_mode(mode);
        cfg.layout = layout.clone();
        let mut mds = Mds::new(cfg);
        let dir = mds.mkdir(ROOT_INO, "project");
        for i in 0..600 {
            mds.create(dir, &format!("f{i}"), if i % 7 == 0 { 40 } else { 2 });
        }
        mds.sync();

        let total = layout.total_blocks() as usize;
        let mut map = vec!['.'; total];
        for b in layout.journal_base()..layout.dirtable_base() {
            map[b as usize] = 'j';
        }
        for g in 0..layout.groups {
            map[layout.block_bitmap(g) as usize] = 'b';
            map[layout.inode_bitmap(g) as usize] = 'b';
        }
        // Paint from the store's introspection APIs.
        if let Some(emb) = mds.embedded() {
            for (ino, snap) in emb.dir_snapshots() {
                if ino != dir {
                    continue;
                }
                for (s, l) in snap.runs {
                    for b in s..s + l {
                        map[b as usize] = 'D';
                    }
                }
                for b in snap.map_blocks {
                    map[b as usize] = 'M';
                }
            }
        } else if let Some(norm) = mds.normal() {
            for (ino, blocks) in norm.dir_block_lists() {
                if ino != dir {
                    continue;
                }
                for b in blocks {
                    map[b as usize] = 'D';
                }
            }
            for (ino, group, index) in norm.inode_locations() {
                let owner = ino.0 >= 3; // the files (root=1, dir=2)
                if owner {
                    map[layout.itable_block(group, index) as usize] = 'I';
                }
            }
        }

        println!("== {mode} ==");
        for (i, row) in map.chunks(128).enumerate() {
            let line: String = row.iter().collect();
            if line.bytes().all(|b| b == b'.') {
                continue;
            }
            println!("{:>5} {line}", i * 128);
        }
        println!();
    }
    println!(
        "Traditional: dirent blocks (D) sit in the data area while the\n\
         inodes (I) sit in the inode table — every ls -l commutes between\n\
         them (Fig. 1b). Embedded: one contiguous content region (D) holds\n\
         entries, inodes and stuffed mappings; fragmented files' extra\n\
         mapping blocks (M) are preallocated right next to it."
    );
}
