//! Drive the metadata server directly: build a source tree, run `ls -l`
//! (readdirplus), rename across directories, and resolve embedded inode
//! numbers through the global directory table (§IV).
//!
//! Run with: `cargo run --example metadata_server --release`

use mif::mds::{DirMode, Mds, MdsConfig, ROOT_INO};

fn main() {
    println!("Metadata server walk-through: normal vs embedded directories\n");

    for mode in [DirMode::Normal, DirMode::Htree, DirMode::Embedded] {
        let mut mds = Mds::new(MdsConfig::with_mode(mode));

        // A project tree: src/ with 2000 files, build/ empty.
        let src = mds.mkdir(ROOT_INO, "src");
        let build = mds.mkdir(ROOT_INO, "build");
        for i in 0..2000 {
            mds.create(src, &format!("file{i:04}.c"), 2);
        }
        mds.sync();
        mds.drop_caches();

        // `ls -l src` — the aggregated readdir+stat the paper optimizes.
        let a0 = mds.disk_stats().dispatched;
        let t0 = mds.elapsed_ns();
        mds.readdir_stat(src);
        let ls_accesses = mds.disk_stats().dispatched - a0;
        let ls_ms = (mds.elapsed_ns() - t0) as f64 / 1e6;

        // Rename a file into build/: embedded mode moves the inode and the
        // inode number changes, tracked by the correlation table.
        let old_ino = mds.lookup(src, "file0000.c").expect("exists");
        let new_ino = mds
            .rename(src, "file0000.c", build, "file0000.o")
            .expect("renamed");
        let resolved = mds.resolve_inode(old_ino).expect("resolves");

        println!("[{mode}]");
        println!("  ls -l over 2000 files: {ls_accesses} disk accesses, {ls_ms:.1} ms simulated");
        println!(
            "  rename: ino {} -> {} ({})",
            old_ino.0,
            new_ino.0,
            if old_ino == new_ino {
                "stable, traditional table"
            } else {
                "moved with the inode, correlated"
            }
        );
        println!(
            "  old number still resolves to: {} (== new: {})",
            resolved.0,
            resolved == new_ino
        );
        println!();
    }

    println!(
        "Embedded directories answer `ls -l` from a handful of streaming reads\n\
         over contiguous content, while the traditional layout alternates\n\
         between dirent blocks and the inode table (Fig. 1b). Renames in\n\
         embedded mode move the inode and re-key it — the global directory\n\
         table plus the rename-correlation keep old file IDs valid (§IV-B)."
    );
}
