//! The paper's motivating scenario (§II-A.1): "in a typical physics
//! simulation, a set of nodes frequently write collected data to a shared
//! file, which will be used for further analysis" (the LLNL trace study).
//!
//! A cluster of 16 nodes × 4 ranks checkpoints a simulation every few
//! steps; later an analysis job reads the checkpoints back. The example
//! compares reservation (the ext4/Lustre baseline) with MiF's on-demand
//! preallocation, and also shows collective I/O as the orthogonal fix.
//!
//! Run with: `cargo run --example physics_checkpoint --release`

use mif::alloc::PolicyKind;
use mif::pfs::FsConfig;
use mif::workloads::btio::{run, BtioParams};

fn main() {
    println!("Physics checkpoint/analysis on 8 shared disks\n");

    let base = BtioParams {
        ranks: 64,
        steps: 2,
        cells_per_rank: 16,
        cell_blocks: 32,
        request_blocks: 2,
        ..Default::default()
    };
    let gib = base.file_blocks() as f64 * 4096.0 / (1 << 30) as f64;
    println!(
        "64 ranks, {} checkpoints, {:.2} GiB solution file, 8 KiB writes\n",
        base.steps, gib
    );

    println!(
        "{:>22}  {:>12}  {:>12}  {:>9}",
        "configuration", "write MiB/s", "read MiB/s", "extents"
    );
    let configs: Vec<(&str, PolicyKind, bool)> = vec![
        ("reservation", PolicyKind::Reservation, false),
        ("on-demand (MiF)", PolicyKind::OnDemand, false),
        ("reservation + cio", PolicyKind::Reservation, true),
        ("on-demand + cio", PolicyKind::OnDemand, true),
    ];
    for (name, policy, collective) in configs {
        let params = BtioParams {
            collective,
            ..base.clone()
        };
        let r = run(FsConfig::with_policy(policy, 8), &params);
        println!(
            "{:>22}  {:>12.1}  {:>12.1}  {:>9}",
            name, r.write_mib_s, r.read_mib_s, r.extents
        );
    }

    println!(
        "\nNon-collective checkpoints interleave 64 ranks' small writes; the\n\
         per-inode reservation places them in arrival order and the analysis\n\
         read pays a seek per fragment. On-demand preallocation gives every\n\
         rank its own window, so each rank's cells stay contiguous. Collective\n\
         I/O sidesteps the interleave entirely by aggregating ~40 MB requests\n\
         — the two techniques compose."
    );
}
