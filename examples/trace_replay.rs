//! Replay an I/O trace against the file system under every policy —
//! the tool you point at your own workload's trace to see whether MiF's
//! on-demand preallocation would help it.
//!
//! Usage:
//!   cargo run --example trace_replay --release               # built-in demo trace
//!   cargo run --example trace_replay --release -- my.trace   # your trace file
//!
//! Trace format (blocks; `#` comments):
//!   w <client> <pid> <offset> <len>     write
//!   r <client> <pid> <offset> <len>     read
//!   round                               barrier (submit the round)
//!   sync                                flush write-back (fsync)
//!   drop_caches                         cold-cache phase boundary

use mif::alloc::PolicyKind;
use mif::pfs::{FileSystem, FsConfig};
use mif::workloads::trace::{replay, Trace};

/// A small demonstration trace: 4 interleaved writers, fsync, then two
/// readers scan the file back.
fn demo_trace() -> String {
    // Four processes extend their own 64-block regions of a shared file,
    // two blocks per round, interleaved — then two analysis readers scan
    // the file back in 16-block requests.
    let mut t = String::from("# generated demo: 4 interleaved writers + 2 readers\n");
    for round in 0..32u64 {
        for p in 0..4u64 {
            t += &format!("w {p} 0 {} 2\n", p * 64 + round * 2);
        }
        t += "round\n";
    }
    t += "sync\ndrop_caches\n";
    // Reader 9 lags reader 8 by two rounds, as real analysis processes
    // drift — lockstep readers would replay the write-time arrival order.
    for step in 0..10u64 {
        if step < 8 {
            t += &format!("r 8 0 {} 16\n", step * 16);
        }
        if step >= 2 {
            t += &format!("r 9 0 {} 16\n", 128 + (step - 2) * 16);
        }
        t += "round\n";
    }
    t
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (source, text) = match args.get(1) {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
        ),
        None => ("<built-in demo>".to_string(), demo_trace()),
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{source}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "replaying {source}: {} events, touches {} blocks\n",
        trace.events.len(),
        trace.max_block()
    );

    println!(
        "{:>12}  {:>10}  {:>10}  {:>8}  {:>12}",
        "policy", "written", "read", "extents", "elapsed"
    );
    for policy in [
        PolicyKind::Vanilla,
        PolicyKind::Reservation,
        PolicyKind::Delayed,
        PolicyKind::OnDemand,
        PolicyKind::Static,
    ] {
        // One disk, so the placement differences are undiluted by striping.
        let mut fs = FileSystem::new(FsConfig::with_policy(policy, 1));
        let file = fs.create("trace.dat", Some(trace.max_block()));
        let stats = replay(&mut fs, file, &trace);
        println!(
            "{:>12}  {:>10}  {:>10}  {:>8}  {:>9.2} ms",
            policy.to_string(),
            format!("{} blk", stats.blocks_written),
            format!("{} blk", stats.blocks_read),
            fs.file_extents(file),
            stats.elapsed_ns as f64 / 1e6,
        );
    }
}
