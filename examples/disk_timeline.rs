//! blktrace-style access timeline: WHERE the disk head goes over TIME
//! during the paper's phase-2 read-back, under reservation vs on-demand
//! placement.
//!
//! Rows are time slices, columns are disk regions; each cell shows how
//! many commands landed there ('.' none, then 1-9, '#' for 10+). A healthy
//! layout reads as a dense sweep; arrival-order fragmentation reads as a
//! storm covering the whole span in every slice.
//!
//! Run with: `cargo run --example disk_timeline --release`

use mif::alloc::PolicyKind;
use mif::pfs::{FileSystem, FsConfig};
use mif::workloads::micro::{run_on, MicroParams};

const COLS: usize = 96;
const ROWS: usize = 14;

fn main() {
    let params = MicroParams {
        streams: 16,
        region_blocks: 512,
        segments: 256,
        readers: 32,
        ..Default::default()
    };
    for policy in [PolicyKind::Reservation, PolicyKind::OnDemand] {
        let mut fs = FileSystem::new(FsConfig::with_policy(policy, 1));
        fs.enable_disk_recording(1 << 20);
        let r = run_on(&mut fs, &params);

        // Keep only phase-2 (read) events.
        let events: Vec<_> = fs
            .disk_events(0)
            .into_iter()
            .filter(|e| e.op == mif::simdisk::IoOp::Read)
            .collect();
        let (Some(first), Some(last)) = (events.first(), events.last()) else {
            continue;
        };
        let t0 = first.at_ns;
        let span_t = (last.at_ns - t0).max(1);
        let max_blk = events.iter().map(|e| e.start + e.len).max().unwrap_or(1);

        let mut grid = [[0u32; COLS]; ROWS];
        for e in &events {
            let row = ((e.at_ns - t0) as u128 * (ROWS as u128 - 1) / span_t as u128) as usize;
            let col = (e.start as u128 * (COLS as u128 - 1) / max_blk as u128) as usize;
            grid[row][col] += 1;
        }

        println!(
            "== {policy} ==  phase-2: {:.1} MiB/s, {} read commands, {} extents",
            r.phase2_mib_s,
            events.len(),
            r.extents
        );
        println!("time v / disk position ->");
        for row in &grid {
            let line: String = row
                .iter()
                .map(|&n| match n {
                    0 => '.',
                    1..=9 => char::from_digit(n, 10).unwrap(),
                    _ => '#',
                })
                .collect();
            println!("{line}");
        }
        println!();
    }
    println!(
        "reservation: every time slice touches the whole span — the head\n\
         sweeps the arrival-order interleave again and again.\n\
         on-demand:   activity marches diagonally — readers stream through\n\
         their own contiguous regions."
    );
}
