//! Quickstart: build a parallel file system, write a shared file from
//! concurrent streams under each allocation policy, and see why MiF's
//! on-demand preallocation exists.
//!
//! Run with: `cargo run --example quickstart --release`

use mif::alloc::{PolicyKind, StreamId};
use mif::pfs::{FileSystem, FsConfig};
use mif::simdisk::mib_per_sec;

fn main() {
    println!("MiF quickstart — 16 streams extend one shared file concurrently\n");
    println!(
        "{:>12}  {:>8}  {:>14}  {:>14}",
        "policy", "extents", "write MiB/s", "read-back MiB/s"
    );

    for policy in [
        PolicyKind::Vanilla,
        PolicyKind::Reservation,
        PolicyKind::OnDemand,
        PolicyKind::Static,
    ] {
        // A 5-disk file system, like the paper's micro-benchmark setup.
        let mut fs = FileSystem::new(FsConfig::with_policy(policy, 5));

        // Each stream owns a 4 MiB region of the shared file and extends it
        // with 16 KiB writes; arrivals interleave round-robin.
        let streams: Vec<StreamId> = (0..16).map(|i| StreamId::new(i, 0)).collect();
        let region = 1024u64; // blocks
        let file = fs.create("checkpoint.odb", Some(16 * region));

        let t0 = fs.data_elapsed_ns();
        for round in 0..(region / 4) {
            fs.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                fs.write(file, s, i as u64 * region + round * 4, 4);
            }
            fs.end_round();
        }
        fs.sync_data();
        fs.close(file);
        let write_ns = fs.data_elapsed_ns() - t0;

        // Read the file back sequentially, 8 concurrent readers.
        fs.drop_data_caches();
        let t1 = fs.data_elapsed_ns();
        let readers: Vec<StreamId> = (0..8).map(|i| StreamId::new(100 + i, 0)).collect();
        let chunk = 16 * region / 8;
        let mut pos = [0u64; 8];
        let mut round = 0u64;
        while pos.iter().any(|&p| p < chunk) {
            fs.begin_round();
            for (j, &r) in readers.iter().enumerate() {
                // Readers drift out of lockstep (each skips 1 round in 8),
                // like real cluster threads.
                if (round + j as u64).is_multiple_of(8) || pos[j] >= chunk {
                    continue;
                }
                fs.read(file, r, j as u64 * chunk + pos[j], 16);
                pos[j] += 16;
            }
            fs.end_round();
            round += 1;
        }
        let read_ns = fs.data_elapsed_ns() - t1;

        let bytes = 16 * region * 4096;
        println!(
            "{:>12}  {:>8}  {:>14.1}  {:>14.1}",
            policy.to_string(),
            fs.file_extents(file),
            mib_per_sec(bytes, write_ns),
            mib_per_sec(bytes, read_ns),
        );
    }

    println!(
        "\nThe interleaved arrivals fragment the logical→physical mapping under\n\
         vanilla/reservation allocation (many extents); on-demand's per-stream\n\
         windows keep each region contiguous, approaching fallocate (static)\n\
         without knowing file sizes in advance."
    );
}
