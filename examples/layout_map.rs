//! Figure 1(a) as ASCII art: the physical layout a shared file gets under
//! each allocation policy when eight processes write it concurrently.
//!
//! Every character is one physical block on the (single) disk; its symbol
//! says which stream's data lives there ('0'..'7'), '.' is free space and
//! '#' is space reserved by a preallocation window. A readable layout has
//! long same-symbol runs; arrival-order interleave shows up as a repeating
//! "01234567" weave.
//!
//! Run with: `cargo run --example layout_map --release`

use mif::alloc::{PolicyKind, StreamId};
use mif::pfs::{FileSystem, FsConfig};

fn main() {
    let streams_n = 8u32;
    let region = 64u64; // blocks per stream region
    for policy in [
        PolicyKind::Reservation,
        PolicyKind::OnDemand,
        PolicyKind::Static,
    ] {
        let mut cfg = FsConfig::with_policy(policy, 1);
        cfg.ondemand.max_window_blocks = 64;
        let mut fs = FileSystem::new(cfg);
        let file = fs.create("shared", Some(streams_n as u64 * region));
        let streams: Vec<StreamId> = (0..streams_n).map(|i| StreamId::new(i, 0)).collect();

        // Interleaved concurrent extends, two blocks per request.
        for round in 0..(region / 2) {
            fs.begin_round();
            for (i, &s) in streams.iter().enumerate() {
                fs.write(file, s, i as u64 * region + round * 2, 2);
            }
            fs.end_round();
        }
        fs.sync_data();

        // Paint the physical map from the extent layout: physical block ->
        // owning stream (via the logical offset's region).
        let span = 1024usize;
        let mut map = vec!['.'; span];
        let layout = fs.physical_layout(file, 0);
        for (logical, phys, len) in layout {
            let owner = (logical / region) as u32;
            let symbol = char::from_digit(owner % 10, 10).unwrap_or('?');
            for b in phys..phys + len {
                if (b as usize) < span {
                    map[b as usize] = symbol;
                }
            }
        }
        // Mark still-reserved (allocated but unmapped) blocks.
        for (i, c) in map.iter_mut().enumerate() {
            if *c == '.' && fs.block_allocated(0, i as u64) {
                *c = '#';
            }
        }

        println!("== {policy} ==  ({} extents)", fs.file_extents(file));
        for row in map.chunks(128) {
            let line: String = row.iter().collect();
            // Skip fully-free rows to keep the output compact.
            if line.bytes().all(|b| b == b'.') {
                continue;
            }
            println!("{line}");
        }
        fs.close(file);
        println!();
    }
    println!(
        "reservation: the '01234567' weave — blocks placed in arrival order.\n\
         on-demand:   per-stream runs that double in length as the windows ramp.\n\
         static:      one solid run per region (identity mapping)."
    );
}
