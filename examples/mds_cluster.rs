//! The §IV-C scenario end to end: an HPC application writes one checkpoint
//! file per process into a single directory, served by a metadata-server
//! cluster — the ORNL CrayXT5 case the paper cites.
//!
//! Run with: `cargo run --example mds_cluster --release`

use mif::mds::{DirMode, Distribution, MdsCluster};

fn main() {
    let processes = 10_000u32;
    println!(
        "checkpoint: {processes} processes, one file each, one directory,\n\
         8 metadata servers (embedded directories, subtree distribution)\n"
    );

    for index in [false, true] {
        let mut cluster = MdsCluster::new(8, DirMode::Embedded, Distribution::Subtree);
        cluster.primary_hash_index = index;
        cluster.mkdir("/ckpt", true); // striped over every server

        for i in 0..processes {
            cluster.create("/ckpt", &format!("rank{i:06}.state"), 2);
        }
        let create_hops = cluster.stats().hops;
        let create_ns = cluster.client_ns();

        // The restart phase looks every file up again.
        for i in 0..processes {
            assert!(cluster.stat("/ckpt", &format!("rank{i:06}.state")));
        }
        let stat_hops = cluster.stats().hops - create_hops;
        let stat_ns = cluster.client_ns() - create_ns;

        println!(
            "primary hash index {}: create {} hops / {:.2}s, restart lookups {} hops / {:.2}s",
            if index { "ON " } else { "OFF" },
            create_hops,
            create_ns as f64 / 1e9,
            stat_hops,
            stat_ns as f64 / 1e9,
        );
    }

    println!(
        "\nWith the collected name hashes at the primary, a lookup goes straight\n\
         to the owning server; without them the primary interrogates the\n\
         subordinates one by one (§IV-C). The directory's files spread over\n\
         all 8 servers either way — `spread` in the largedir bench."
    );
}
