//! Parallel allocation groups under real threads: the paper's IO servers
//! divide each disk "into parallel allocation groups (PAG) for parallel
//! management of free space" (§V-A). This example hammers one
//! [`GroupedAllocator`] from many OS threads and verifies the result.
//!
//! Run with: `cargo run --example concurrent_allocation --release`

use mif::alloc::{AllocPolicy, FileId, GroupedAllocator, OnDemandPolicy, StreamId};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn main() {
    let threads = 8u32;
    let appends_per_thread = 20_000u64;
    let alloc = Arc::new(GroupedAllocator::new(1 << 24, 64));
    // The policy itself serializes on a lock (as an IO server's allocator
    // thread would); the bitmap groups below it are individually locked.
    let policy = Arc::new(Mutex::new(OnDemandPolicy::default()));

    println!(
        "{} threads x {} appends through one on-demand allocator ({} groups)\n",
        threads,
        appends_per_thread,
        alloc.group_count()
    );

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let alloc = Arc::clone(&alloc);
            let policy = Arc::clone(&policy);
            std::thread::spawn(move || {
                let stream = StreamId::new(t, 0);
                let mut runs: Vec<(u64, u64)> = Vec::new();
                for i in 0..appends_per_thread {
                    let logical = t as u64 * 1_000_000 + i * 4;
                    runs.extend(policy.lock().unwrap().extend(
                        &alloc,
                        FileId(1),
                        stream,
                        logical,
                        4,
                    ));
                }
                runs
            })
        })
        .collect();

    let mut all: Vec<(u64, u64)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("thread panicked"))
        .collect();
    let wall = start.elapsed();

    // Verify: full coverage, no overlaps.
    let total: u64 = all.iter().map(|&(_, l)| l).sum();
    all.sort_unstable();
    let overlaps = all.windows(2).filter(|w| w[0].0 + w[0].1 > w[1].0).count();
    // Contiguity: coalesce adjacent allocations, then ask how few physical
    // runs cover the whole workload.
    let mut coalesced: Vec<(u64, u64)> = Vec::new();
    for &(s, l) in &all {
        match coalesced.last_mut() {
            Some((cs, cl)) if *cs + *cl == s => *cl += l,
            _ => coalesced.push((s, l)),
        }
    }
    println!("allocated blocks : {total}");
    println!("physical runs    : {} (coalesced)", coalesced.len());
    println!("overlapping runs : {overlaps} (must be 0)");
    println!(
        "mean run length  : {:.0} blocks",
        total as f64 / coalesced.len() as f64
    );
    println!(
        "throughput       : {:.1}M appends/s (wall {wall:?})",
        (threads as u64 * appends_per_thread) as f64 / wall.as_secs_f64() / 1e6
    );
    assert_eq!(overlaps, 0, "allocator handed out overlapping blocks");
    assert_eq!(total, threads as u64 * appends_per_thread * 4);
    println!("\nOK — disjoint, fully-covered, per-stream contiguous allocation.");
}
